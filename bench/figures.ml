(* Paper-shape reproduction: one function per table/figure of the
   evaluation section. Each prints the same series the paper plots and
   returns the raw numbers so the calibration tests can assert orderings. *)

module Time = Simnet.Time

let mib = 1048576.0

(* Run an application in a configuration: numerics are verified once on a
   small functional run, then the measured run replays the paper's
   iteration counts with kernel execution disabled (timing-identical; see
   DESIGN.md "Determinism"). *)
let verified_measured (cfg : Unikernel.Config.t) ~verify_run ~measured_run =
  ignore (Unikernel.Runner.run ~functional:true cfg verify_run);
  Unikernel.Runner.run ~functional:false cfg measured_run

let header title = Printf.printf "\n== %s ==\n%!" title

let table1 () =
  header "Table 1: evaluated configurations";
  Printf.printf "%-9s %-5s %-12s %-10s %s\n" "Name" "app" "OS" "Hypervisor"
    "Network";
  List.iter print_endline (Unikernel.Config.table1_rows ())

(* --- Figure 5: proxy applications --- *)

type app_row = { cfg : Unikernel.Config.t; seconds : float; calls : int;
                 mib_up : float; mib_down : float }

let print_app_rows rows =
  Printf.printf "%-9s %10s %12s %10s %10s\n" "config" "time[s]" "API calls"
    "up[MiB]" "down[MiB]";
  List.iter
    (fun r ->
      Printf.printf "%-9s %10.2f %12d %10.2f %10.2f\n" r.cfg.Unikernel.Config.name
        r.seconds r.calls r.mib_up r.mib_down)
    rows

let app_row cfg (m : Unikernel.Runner.measurement) =
  {
    cfg;
    seconds = Time.to_float_s m.Unikernel.Runner.elapsed;
    calls = m.Unikernel.Runner.api_calls;
    mib_up = Float.of_int m.Unikernel.Runner.memcpy_up /. mib;
    mib_down = Float.of_int m.Unikernel.Runner.memcpy_down /. mib;
  }

let fig5a ?(iterations = Apps.Matrix_mul.paper.Apps.Matrix_mul.iterations) () =
  header
    (Printf.sprintf "Figure 5a: matrixMul, %d iterations (10-run averages in \
                     the paper; deterministic here)" iterations);
  let params = { Apps.Matrix_mul.paper with Apps.Matrix_mul.iterations } in
  let rows =
    List.map
      (fun cfg ->
        let m =
          verified_measured cfg
            ~verify_run:
              (Apps.Matrix_mul.run ~verify:true
                 { params with Apps.Matrix_mul.iterations = 2 })
            ~measured_run:(Apps.Matrix_mul.run ~verify:false params)
        in
        app_row cfg m)
      Unikernel.Config.all
  in
  print_app_rows rows;
  rows

let fig5b ?(iterations = Apps.Linear_solver.paper.Apps.Linear_solver.iterations)
    () =
  header
    (Printf.sprintf
       "Figure 5b: cuSolverDn_LinearSolver, LU 900x900, %d iterations"
       iterations);
  let params = { Apps.Linear_solver.paper with Apps.Linear_solver.iterations } in
  let rows =
    List.map
      (fun cfg ->
        let m =
          verified_measured cfg
            ~verify_run:
              (Apps.Linear_solver.run ~verify:true
                 { params with Apps.Linear_solver.iterations = 1 })
            ~measured_run:(Apps.Linear_solver.run ~verify:false params)
        in
        app_row cfg m)
      Unikernel.Config.all
  in
  print_app_rows rows;
  rows

let fig5c ?(iterations = Apps.Histogram.paper.Apps.Histogram.iterations) () =
  header (Printf.sprintf "Figure 5c: histogram, 64 MiB, %d iterations" iterations);
  let params = { Apps.Histogram.paper with Apps.Histogram.iterations } in
  let rows =
    List.map
      (fun cfg ->
        let m =
          verified_measured cfg
            ~verify_run:
              (Apps.Histogram.run ~verify:true
                 { params with Apps.Histogram.iterations = 2 })
            ~measured_run:(Apps.Histogram.run ~verify:false params)
        in
        app_row cfg m)
      Unikernel.Config.all
  in
  print_app_rows rows;
  rows

(* --- Figure 6: API-call micro-benchmarks --- *)

type micro_row = { mcfg : Unikernel.Config.t; mseconds : float; per_call_us : float }

let print_micro_rows rows =
  Printf.printf "%-9s %12s %14s\n" "config" "total[s]" "per call[us]";
  List.iter
    (fun r ->
      Printf.printf "%-9s %12.3f %14.2f\n" r.mcfg.Unikernel.Config.name
        r.mseconds (r.per_call_us))
    rows

let fig6 which ?(calls = 100_000) () =
  header
    (Printf.sprintf "Figure 6%s: %s x %d"
       (match which with
       | Apps.Micro.Get_device_count -> "a"
       | Apps.Micro.Malloc_free -> "b"
       | Apps.Micro.Kernel_launch -> "c")
       (Apps.Micro.which_to_string which)
       calls);
  let rows =
    List.map
      (fun cfg ->
        let result = ref None in
        let (_ : Unikernel.Runner.measurement) =
          Unikernel.Runner.run ~functional:false cfg (fun env ->
              result := Some (Apps.Micro.run ~calls which env))
        in
        match !result with
        | Some r ->
            {
              mcfg = cfg;
              mseconds = Time.to_float_s r.Apps.Micro.elapsed;
              per_call_us = r.Apps.Micro.ns_per_call /. 1000.0;
            }
        | None -> assert false)
      Unikernel.Config.all
  in
  print_micro_rows rows;
  rows

(* --- Figure 7: bandwidthTest --- *)

type bw_row = { bcfg : Unikernel.Config.t; mib_per_s : float; pct_of_best : float }

let print_bw_rows rows =
  Printf.printf "%-9s %14s %12s\n" "config" "MiB/s" "% of native";
  List.iter
    (fun r ->
      Printf.printf "%-9s %14.1f %12.1f\n" r.bcfg.Unikernel.Config.name
        r.mib_per_s r.pct_of_best)
    rows

let fig7 direction ?(total_bytes = 512 lsl 20) () =
  header
    (Printf.sprintf "Figure 7%s: bandwidthTest %s, %d MiB"
       (match direction with
       | Apps.Bandwidth.Device_to_host -> "a"
       | Apps.Bandwidth.Host_to_device -> "b")
       (Apps.Bandwidth.direction_to_string direction)
       (total_bytes lsr 20));
  let raw =
    List.map
      (fun cfg ->
        let result = ref None in
        let (_ : Unikernel.Runner.measurement) =
          Unikernel.Runner.run ~functional:false cfg (fun env ->
              result := Some (Apps.Bandwidth.measure ~total_bytes direction env))
        in
        match !result with
        | Some r -> (cfg, r.Apps.Bandwidth.mib_per_s)
        | None -> assert false)
      Unikernel.Config.all
  in
  let best = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 raw in
  let rows =
    List.map
      (fun (cfg, v) ->
        { bcfg = cfg; mib_per_s = v; pct_of_best = 100.0 *. v /. best })
      raw
  in
  print_bw_rows rows;
  rows

(* --- §4.2 ablation: Linux VM with bulk offloads disabled --- *)

let ablation_offloads ?(total_bytes = 512 lsl 20) () =
  header
    "Ablation (section 4.2): Linux VM with TSO/tx-csum/SG disabled, \
     host-to-device";
  let vm = Unikernel.Config.linux_vm in
  let crippled_profile =
    Simnet.Hostprofile.with_offloads vm.Unikernel.Config.profile
      (Simnet.Offload.disable_bulk
         vm.Unikernel.Config.profile.Simnet.Hostprofile.offloads)
  in
  let crippled =
    { vm with Unikernel.Config.name = "VM-nooff"; profile = crippled_profile }
  in
  let measure cfg =
    let result = ref None in
    let (_ : Unikernel.Runner.measurement) =
      Unikernel.Runner.run ~functional:false cfg (fun env ->
          result :=
            Some
              (Apps.Bandwidth.measure ~total_bytes
                 Apps.Bandwidth.Host_to_device env))
    in
    match !result with
    | Some r -> r.Apps.Bandwidth.mib_per_s
    | None -> assert false
  in
  let with_offloads = measure vm in
  let without = measure crippled in
  Printf.printf "%-24s %14.1f MiB/s\n" "Linux VM (offloads on)" with_offloads;
  Printf.printf "%-24s %14.1f MiB/s  (paper: ~923.9 MiB/s)\n"
    "Linux VM (offloads off)" without;
  (with_offloads, without)

(* --- Figure 7 on the executable stack: per-config offload negotiation.

   Unlike [fig7]/[ablation_offloads], which price transfers with the
   Netcost closed form, this runs a bulk upload through the real
   Endpoint + Netdev datapath: TSO/GRO/checksum effects emerge from
   segmentation and ACK clocking rather than from a formula. The two
   views bracketing each other is the validation. *)

let ablation_offloads_exec ?(total_bytes = 64 lsl 20) () =
  header
    (Printf.sprintf
       "Ablation (Figure 7, executable stack): %d MiB upload over \
        Endpoint+Netdev"
       (total_bytes lsr 20));
  let results = Unikernel.Netbench.ablation ~bytes:total_bytes () in
  let native = List.hd results in
  Printf.printf "%-10s %12s %10s %8s %8s %9s %s\n" "config" "MiB/s" "% native"
    "wire" "rxunits" "swcsumMiB" "offloads";
  List.iter
    (fun (r : Unikernel.Netbench.result) ->
      Printf.printf "%-10s %12.1f %10.1f %8d %8d %9.1f %s\n"
        r.Unikernel.Netbench.name r.Unikernel.Netbench.bandwidth_mib_s
        (100.0
        *. r.Unikernel.Netbench.bandwidth_mib_s
        /. native.Unikernel.Netbench.bandwidth_mib_s)
        r.Unikernel.Netbench.netdev.Tcpstack.Netdev.wire_segments
        r.Unikernel.Netbench.netdev.Tcpstack.Netdev.rx_units
        (float_of_int
           r.Unikernel.Netbench.netdev.Tcpstack.Netdev.sw_checksum_bytes
        /. mib)
        (Format.asprintf "%a" Simnet.Offload.pp
           r.Unikernel.Netbench.offloads))
    results;
  results

(* --- §4.1 analysis table: per-app call counts and transfer volumes --- *)

let fig5_stats () =
  header
    "Section 4.1 profile: API calls and transferred bytes per application \
     (paper: matrixMul 100041 calls / 1.95 MiB; LinearSolver 20047 calls / \
     6.07 GiB; histogram 80033 calls / 64 MiB)";
  let row name calls (m : Unikernel.Runner.measurement) =
    Printf.printf
      "%-22s %10d calls %10.2f MiB memory transfers (%.2f up / %.2f down)\n"
      name calls
      (Float.of_int (m.Unikernel.Runner.memcpy_up + m.Unikernel.Runner.memcpy_down) /. mib)
      (Float.of_int m.Unikernel.Runner.memcpy_up /. mib)
      (Float.of_int m.Unikernel.Runner.memcpy_down /. mib)
  in
  let m =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Matrix_mul.run ~verify:false Apps.Matrix_mul.paper)
  in
  row "matrixMul" m.Unikernel.Runner.api_calls m;
  let ls =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Linear_solver.run ~verify:false Apps.Linear_solver.paper)
  in
  row "cuSolverDn_LinearSolver" ls.Unikernel.Runner.api_calls ls;
  let h =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Histogram.run ~verify:false Apps.Histogram.paper)
  in
  row "histogram" h.Unikernel.Runner.api_calls h;
  (m.Unikernel.Runner.api_calls, ls.Unikernel.Runner.api_calls,
   h.Unikernel.Runner.api_calls)

(* --- ablation: record-marking fragment size --- *)

let ablation_fragsize () =
  header
    "Ablation: RPC record fragment size (RPC-Lib must support fragmented \
     records; smaller fragments add header overhead)";
  Printf.printf "%-14s %14s %16s\n" "fragment" "wire bytes" "time (hermit)";
  let payload = 8 lsl 20 in
  List.map
    (fun fragment_size ->
      (* wire overhead is exact arithmetic on the record format *)
      let fragments = (payload + fragment_size - 1) / fragment_size in
      let wire = payload + (4 * fragments) in
      (* virtual transfer time for the wire bytes from a hermit client *)
      let t =
        Simnet.Netcost.one_way_time
          ~sender:Unikernel.Config.hermit.Unikernel.Config.profile
          ~receiver:Unikernel.Config.server_profile ~link:Unikernel.Config.link
          wire
      in
      Printf.printf "%-14s %14d %16s\n"
        (if fragment_size >= 1 lsl 20 then
           Printf.sprintf "%d MiB" (fragment_size lsr 20)
         else Printf.sprintf "%d KiB" (fragment_size lsr 10))
        wire
        (Format.asprintf "%a" Time.pp t);
      (fragment_size, wire, t))
    [ 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 20; Oncrpc.Record.max_fragment_size ]

(* --- ablation: transfer strategies --- *)

let ablation_transfer () =
  header
    "Ablation: Cricket memory-transfer strategies (only rpc-arguments is \
     available to unikernels; section 4.2)";
  Printf.printf "%-20s %14s %12s %s\n" "strategy" "est. MiB/s" "unikernel?" "";
  let base =
    Simnet.Netcost.throughput_bytes_per_s
      ~sender:Unikernel.Config.server_profile
      ~receiver:Unikernel.Config.server_profile ~link:Unikernel.Config.link
      (64 lsl 20)
    /. 1048576.0
  in
  List.map
    (fun strategy ->
      let mibs = base *. Cricket.Transfer.bandwidth_multiplier strategy in
      Printf.printf "%-20s %14.1f %12s\n"
        (Cricket.Transfer.to_string strategy)
        mibs
        (if Cricket.Transfer.supported_by_unikernel strategy then "yes"
         else "no");
      (strategy, mibs))
    [ Cricket.Transfer.Rpc_arguments; Cricket.Transfer.Parallel_tcp 4;
      Cricket.Transfer.Parallel_tcp 8; Cricket.Transfer.Infiniband_rdma;
      Cricket.Transfer.Shared_memory ]

(* --- ablation: GPU-sharing scheduler policies under contention --- *)

let ablation_scheduler () =
  header
    "Ablation: GPU sharing across many unikernels — scheduler policies \
     (section 5: \"managing the shared access through configurable \
     schedulers\")";
  (* 8 unikernel clients: one batch client whose Pareto-sized jobs arrive
     in a burst, seven interactive clients with Poisson arrivals *)
  let rng = Simnet.Random_variate.create ~seed:2023 in
  let jobs =
    List.concat
      (List.init 8 (fun c ->
           if c = 0 then
             List.init 20 (fun i ->
                 { Cricket.Sched.client = "batch";
                   arrival = Time.us (i * 50);
                   duration =
                     Time.of_float_ns
                       (1_000.0
                       *. Simnet.Random_variate.pareto rng ~shape:1.3
                            ~scale:400.0 ~max:2_500.0);
                   priority = 5 })
           else
             List.map
               (fun arrival ->
                 { Cricket.Sched.client = Printf.sprintf "uk%d" c;
                   arrival;
                   duration =
                     Time.us
                       (80 + Simnet.Random_variate.uniform_int rng 80);
                   priority = 1 })
               (Simnet.Random_variate.poisson_arrivals rng
                  ~mean_gap:(Time.us 1_000) ~count:10)))
  in
  Printf.printf "%-13s %12s %16s %16s %10s\n" "policy" "makespan"
    "interactive wait" "batch wait" "fairness";
  List.map
    (fun policy ->
      let placements = Cricket.Sched.schedule policy jobs in
      let stats = Cricket.Sched.per_client placements in
      let interactive_wait =
        let waits =
          List.filter_map
            (fun (c, s) ->
              if c <> "batch" then
                Some (Time.to_float_us s.Cricket.Sched.max_waiting)
              else None)
            stats
        in
        List.fold_left Float.max 0.0 waits
      in
      let batch_wait =
        Time.to_float_us (List.assoc "batch" stats).Cricket.Sched.max_waiting
      in
      let fairness = Cricket.Sched.fairness placements in
      Printf.printf "%-13s %12s %13.0f us %13.0f us %10.3f\n"
        (Cricket.Sched.policy_to_string policy)
        (Format.asprintf "%a" Time.pp (Cricket.Sched.makespan placements))
        interactive_wait batch_wait fairness;
      (policy, Cricket.Sched.makespan placements, fairness))
    [ Cricket.Sched.Fifo; Cricket.Sched.Round_robin; Cricket.Sched.Priority ]

(* --- future work (§4.2/§5): TSO for unikernels, vDPA data path --- *)

let ablation_futures ?(total_bytes = 128 lsl 20) () =
  header
    "Projection (section 5 future work): unikernel TSO support and vDPA \
     direct data path";
  Printf.printf "%-18s %14s %14s %14s\n" "config" "H2D MiB/s" "D2H MiB/s"
    "RTT [us]";
  let evaluate cfg =
    let h2d = ref 0.0 and d2h = ref 0.0 and rtt = ref 0.0 in
    let (_ : Unikernel.Runner.measurement) =
      Unikernel.Runner.run ~functional:false cfg (fun env ->
          let r1 =
            Apps.Bandwidth.measure ~total_bytes Apps.Bandwidth.Host_to_device env
          in
          let r2 =
            Apps.Bandwidth.measure ~total_bytes Apps.Bandwidth.Device_to_host env
          in
          let m = Apps.Micro.run ~calls:2_000 Apps.Micro.Get_device_count env in
          h2d := r1.Apps.Bandwidth.mib_per_s;
          d2h := r2.Apps.Bandwidth.mib_per_s;
          rtt := m.Apps.Micro.ns_per_call /. 1e3)
    in
    (!h2d, !d2h, !rtt)
  in
  List.concat_map
    (fun base ->
      List.map
        (fun (label, cfg) ->
          let h2d, d2h, rtt = evaluate cfg in
          let shown =
            if label = "baseline" then base.Unikernel.Config.name
            else base.Unikernel.Config.name ^ label
          in
          Printf.printf "%-18s %14.1f %14.1f %14.2f\n" shown h2d d2h rtt;
          (shown, h2d, d2h, rtt))
        (Unikernel.Futures.variants base))
    [ Unikernel.Config.hermit; Unikernel.Config.unikraft ]

(* --- multi-tenant GPU sharing (§5) --- *)

let ablation_multitenant () =
  header
    "Multi-tenant GPU sharing (section 5): four Hermit unikernels on one \
     A100 through a single Cricket server";
  (* tenant 0 is a heavy batch job, 1-3 are small interactive jobs *)
  let saxpy_step n (client : Cricket.Client.t) =
    let d = Cricket.Client.malloc client (4 * n) in
    Cricket.Client.memset client ~ptr:d ~value:0 ~len:(4 * n);
    Cricket.Client.free client d
  in
  let tenants =
    {
      Unikernel.Multitenant.name = "batch";
      config = Unikernel.Config.hermit;
      priority = 5;
      work = List.init 40 (fun _ -> saxpy_step (1 lsl 20));
    }
    :: List.init 3 (fun i ->
           {
             Unikernel.Multitenant.name = Printf.sprintf "interactive%d" (i + 1);
             config = Unikernel.Config.hermit;
             priority = 1;
             work = List.init 10 (fun _ -> saxpy_step 4096);
           })
  in
  List.map
    (fun policy ->
      let report =
        Unikernel.Multitenant.run ~policy ~functional:false tenants
      in
      Format.printf "%a" Unikernel.Multitenant.pp_report report;
      report)
    [ Cricket.Sched.Fifo; Cricket.Sched.Round_robin; Cricket.Sched.Priority ]

(* --- ablation: CUDA streams & asynchronous RPC pipelining --- *)

let ablation_pipeline ?(params = Apps.Pipeline.default) () =
  header
    (Printf.sprintf
       "Ablation: stream-ordered async RPC pipelining — %d rounds of \
        upload+saxpy on %d-element vectors (one-way RPCs share a network \
        round trip; sync pays it on every call)"
       params.Apps.Pipeline.rounds params.Apps.Pipeline.elements);
  let modes =
    [ Apps.Pipeline.Sync; Apps.Pipeline.Async 1; Apps.Pipeline.Async 4;
      Apps.Pipeline.Async 16; Apps.Pipeline.Async 64 ]
  in
  Printf.printf "%-9s %-9s %12s %12s %10s %8s %s\n" "config" "mode" "time[ms]"
    "calls/s" "speedup" "bitexact" "";
  List.concat_map
    (fun cfg ->
      let results =
        List.map (fun mode -> Apps.Pipeline.measure ~params mode cfg) modes
      in
      let baseline = List.hd results in
      List.iter
        (fun (r : Apps.Pipeline.result) ->
          Printf.printf "%-9s %-9s %12.3f %12.0f %9.2fx %8s\n"
            cfg.Unikernel.Config.name
            (Apps.Pipeline.mode_name r.Apps.Pipeline.mode)
            (Time.to_float_ms r.Apps.Pipeline.elapsed)
            r.Apps.Pipeline.calls_per_s
            (Time.to_float_s baseline.Apps.Pipeline.elapsed
            /. Time.to_float_s r.Apps.Pipeline.elapsed)
            (if r.Apps.Pipeline.digest = baseline.Apps.Pipeline.digest then
               "yes"
             else "NO"))
        results;
      List.map (fun r -> (cfg, r)) results)
    Unikernel.Config.all

(* --- server-side per-procedure profile --- *)

let proc_profile () =
  header
    "Server-side per-procedure call profile for matrixMul (names resolved \
     from the RPCL spec)";
  let counts = ref [] in
  let (_ : Unikernel.Runner.measurement) =
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (fun env ->
        Apps.Matrix_mul.run ~verify:false
          { Apps.Matrix_mul.default with Apps.Matrix_mul.iterations = 1_000 }
          env;
        counts := Cricket.Server.proc_stats env.Unikernel.Runner.server)
  in
  List.iter
    (fun (name, count) -> Printf.printf "%-32s %8d\n" name count)
    !counts;
  !counts
