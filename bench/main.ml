(* Benchmark harness entry point.

   With no arguments, regenerates every table and figure of the paper's
   evaluation section at paper scale, then the ablations, then the
   Bechamel microbenchmarks. Pass experiment names to run a subset:

     dune exec bench/main.exe                     # everything
     dune exec bench/main.exe -- fig6a fig7a      # subset
     dune exec bench/main.exe -- --quick          # reduced iteration counts
     dune exec bench/main.exe -- bechamel         # only the microbenches *)

let quick = ref false

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "Table 1: configuration matrix", fun () -> Figures.table1 ());
    ( "fig5a",
      "Figure 5a: matrixMul execution time",
      fun () ->
        ignore (Figures.fig5a ?iterations:(if !quick then Some 5_000 else None) ()) );
    ( "fig5b",
      "Figure 5b: cuSolverDn_LinearSolver execution time",
      fun () ->
        ignore (Figures.fig5b ?iterations:(if !quick then Some 100 else None) ()) );
    ( "fig5c",
      "Figure 5c: histogram execution time",
      fun () ->
        ignore (Figures.fig5c ?iterations:(if !quick then Some 2_000 else None) ()) );
    ( "fig5-stats",
      "Section 4.1: per-application API calls and transfer volumes",
      fun () -> ignore (Figures.fig5_stats ()) );
    ( "fig6a",
      "Figure 6a: cudaGetDeviceCount latency",
      fun () ->
        ignore
          (Figures.fig6 Apps.Micro.Get_device_count
             ?calls:(if !quick then Some 10_000 else None) ()) );
    ( "fig6b",
      "Figure 6b: cudaMalloc/cudaFree latency",
      fun () ->
        ignore
          (Figures.fig6 Apps.Micro.Malloc_free
             ?calls:(if !quick then Some 10_000 else None) ()) );
    ( "fig6c",
      "Figure 6c: kernel launch latency",
      fun () ->
        ignore
          (Figures.fig6 Apps.Micro.Kernel_launch
             ?calls:(if !quick then Some 10_000 else None) ()) );
    ( "fig7a",
      "Figure 7a: device-to-host bandwidth",
      fun () ->
        ignore
          (Figures.fig7 Apps.Bandwidth.Device_to_host
             ?total_bytes:(if !quick then Some (128 lsl 20) else None) ()) );
    ( "fig7b",
      "Figure 7b: host-to-device bandwidth",
      fun () ->
        ignore
          (Figures.fig7 Apps.Bandwidth.Host_to_device
             ?total_bytes:(if !quick then Some (128 lsl 20) else None) ()) );
    ( "ablation-offloads",
      "Ablation: VM bulk offloads disabled (section 4.2)",
      fun () ->
        ignore
          (Figures.ablation_offloads
             ?total_bytes:(if !quick then Some (128 lsl 20) else None) ()) );
    ( "ablation-offloads-exec",
      "Ablation: Figure 7 offload negotiation on the executable TCP stack",
      fun () ->
        ignore
          (Figures.ablation_offloads_exec
             ?total_bytes:(if !quick then Some (8 lsl 20) else None) ()) );
    ( "ablation-fragsize",
      "Ablation: RPC record fragment size",
      fun () -> ignore (Figures.ablation_fragsize ()) );
    ( "ablation-transfer",
      "Ablation: memory-transfer strategies",
      fun () -> ignore (Figures.ablation_transfer ()) );
    ( "ablation-scheduler",
      "Ablation: GPU-sharing scheduler policies",
      fun () -> ignore (Figures.ablation_scheduler ()) );
    ( "ablation-futures",
      "Projection: unikernel TSO and vDPA (section 5 future work)",
      fun () ->
        ignore
          (Figures.ablation_futures
             ?total_bytes:(if !quick then Some (64 lsl 20) else None) ()) );
    ( "ablation-pipeline",
      "Ablation: CUDA streams and async RPC pipelining depth",
      fun () ->
        ignore
          (Figures.ablation_pipeline
             ?params:
               (if !quick then
                  Some { Apps.Pipeline.rounds = 32; elements = 1024 }
                else None)
             ()) );
    ( "ablation-multitenant",
      "Multi-tenant GPU sharing across unikernels",
      fun () -> ignore (Figures.ablation_multitenant ()) );
    ( "proc-profile",
      "Server-side per-procedure call profile",
      fun () -> ignore (Figures.proc_profile ()) );
    ( "bechamel",
      "Bechamel microbenchmarks",
      fun () -> Bechamel_suite.run ~quick:!quick () );
  ]

let usage () =
  print_endline "usage: main.exe [--quick] [experiment ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-20s %s\n" name doc)
    experiments

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a ->
           match a with
           | "--quick" ->
               quick := true;
               false
           | "--help" | "-h" ->
               usage ();
               exit 0
           | _ -> true)
  in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S\n" name;
                usage ();
                exit 1)
          names
  in
  Printf.printf
    "Cricket-unikernel reproduction benchmarks%s\n\
     All times are deterministic virtual-time results from the simulation \
     model\n\
     (see DESIGN.md and EXPERIMENTS.md).\n"
    (if !quick then " (quick mode)" else "");
  List.iter (fun (_, _, run) -> run ()) selected
