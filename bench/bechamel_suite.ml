(* Bechamel microbenchmarks: real host-time cost of the simulation
   pipeline, one Test.make per paper table/figure (the virtual-time numbers
   those experiments report are produced by Figures; these measure how fast
   the reproduction itself runs). *)

open Bechamel
open Toolkit

let make_env () =
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~memory_capacity:(1 lsl 24)
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) false;
  Cricket.Local.connect server

let test_table1 =
  Test.make ~name:"table1/config-table"
    (Staged.stage (fun () -> ignore (Unikernel.Config.table1_rows ())))

let test_fig5a =
  let client = make_env () in
  let image = Cubin.Image.of_registry [ Gpusim.Kernels.matrix_mul_name ] in
  let modul = Cricket.Client.module_load client (Cubin.Image.build image) in
  let func =
    Cricket.Client.get_function client ~modul
      ~name:Gpusim.Kernels.matrix_mul_name
  in
  let d = Cricket.Client.malloc client 4096 in
  Test.make ~name:"fig5a/launch-roundtrip"
    (Staged.stage (fun () ->
         Cricket.Client.launch client func
           ~grid:{ Cricket.Client.x = 10; y = 10; z = 1 }
           ~block:{ Cricket.Client.x = 32; y = 32; z = 1 }
           [|
             Gpusim.Kernels.Ptr (Int64.to_int d);
             Gpusim.Kernels.Ptr (Int64.to_int d);
             Gpusim.Kernels.Ptr (Int64.to_int d);
             Gpusim.Kernels.I32 16l;
             Gpusim.Kernels.I32 16l;
           |]))

let test_fig5b =
  let engine = Simnet.Engine.create () in
  let ctx =
    Cudasim.Context.create ~memory_capacity:(1 lsl 24)
      (Cudasim.Context.engine_clock engine)
  in
  let h = Cudasim.Cusolver.create ctx in
  let n = 64 in
  let d_a =
    match Cudasim.Api.malloc ctx (Int64.of_int (4 * n * n)) with
    | Ok p -> p
    | Error _ -> assert false
  in
  let d_ipiv =
    match Cudasim.Api.malloc ctx (Int64.of_int (4 * n)) with
    | Ok p -> p
    | Error _ -> assert false
  in
  (* non-singular input regenerated per run via the diagonal *)
  Test.make ~name:"fig5b/sgetrf-64"
    (Staged.stage (fun () ->
         let b = Bytes.make (4 * n * n) '\000' in
         for i = 0 to n - 1 do
           Bytes.set_int32_le b (4 * ((i * n) + i)) (Int32.bits_of_float 4.0)
         done;
         ignore (Cudasim.Api.memcpy_h2d ctx ~dst:d_a b);
         ignore
           (Cudasim.Cusolver.sgetrf ctx ~handle:h ~m:n ~n ~a:d_a ~lda:n
              ~workspace:0L ~ipiv:d_ipiv)))

let test_fig5c =
  let m = Gpusim.Memory.create ~capacity:(1 lsl 22) in
  let data = Gpusim.Memory.alloc m (1 lsl 20) in
  let bins = Gpusim.Memory.alloc m 1024 in
  let k = Option.get (Gpusim.Kernels.find Gpusim.Kernels.histogram256_name) in
  Test.make ~name:"fig5c/histogram-1MiB"
    (Staged.stage (fun () ->
         k.Gpusim.Kernels.execute m
           {
             Gpusim.Kernels.grid = { Gpusim.Kernels.x = 240; y = 1; z = 1 };
             block = { Gpusim.Kernels.x = 192; y = 1; z = 1 };
             shared_mem = 0;
             args =
               [|
                 Gpusim.Kernels.Ptr bins; Gpusim.Kernels.Ptr data;
                 Gpusim.Kernels.I32 (Int32.of_int (1 lsl 20));
               |];
           }))

let test_fig6 =
  let client = make_env () in
  Test.make ~name:"fig6/rpc-roundtrip"
    (Staged.stage (fun () -> ignore (Cricket.Client.get_device_count client)))

let test_fig7 =
  let client = make_env () in
  let d = Cricket.Client.malloc client (1 lsl 20) in
  let payload = Bytes.create (1 lsl 20) in
  Test.make ~name:"fig7/memcpy-1MiB-roundtrip"
    (Staged.stage (fun () -> Cricket.Client.memcpy_h2d client ~dst:d payload))

let test_xdr =
  let enc = Xdr.Encode.create () in
  Test.make ~name:"substrate/xdr-encode-1KiB"
    (Staged.stage
       (let payload = Bytes.create 1024 in
        fun () ->
          Xdr.Encode.reset enc;
          Xdr.Encode.uint32 enc 42l;
          Xdr.Encode.opaque enc payload))

let test_record =
  Test.make ~name:"substrate/record-marking-64KiB"
    (Staged.stage
       (let payload = String.make 65536 'x' in
        fun () -> ignore (Oncrpc.Record.to_wire ~fragment_size:8192 payload)))

let test_lzss =
  let image =
    Cubin.Image.build ~compress:false
      (Cubin.Image.of_registry [ Gpusim.Kernels.matrix_mul_name ])
  in
  Test.make ~name:"substrate/lzss-compress-cubin"
    (Staged.stage (fun () -> ignore (Cubin.Lzss.compress image)))

let test_netcost =
  let native = Simnet.Hostprofile.bare_metal_linux in
  Test.make ~name:"substrate/netcost-eval"
    (Staged.stage (fun () ->
         ignore
           (Simnet.Netcost.one_way_time ~sender:native ~receiver:native
              ~link:Simnet.Link.ethernet_100g (1 lsl 20))))

let test_sched =
  let jobs =
    List.init 100 (fun i ->
        {
          Cricket.Sched.client = Printf.sprintf "c%d" (i mod 8);
          arrival = Simnet.Time.us (i * 13);
          duration = Simnet.Time.us 100;
          priority = i mod 3;
        })
  in
  Test.make ~name:"substrate/scheduler-100-jobs"
    (Staged.stage (fun () ->
         ignore (Cricket.Sched.schedule Cricket.Sched.Round_robin jobs)))

(* --- scatter-gather datapath group ---

   Measures the zero-copy tx path against the seed Buffer-based one at
   each layer: XDR encoding (sliced vs copying), record framing (vectored
   [writev] vs [to_wire]), and the full upload round-trip through the
   stack. The framing pair is the acceptance comparison: both emit
   byte-identical wire images (property-tested), so the throughput delta
   is purely the removed copies. *)

let datapath_tests ~quick =
  let payload_len = 65536 in
  let payload = String.make payload_len 'x' in
  let payload_bytes = Bytes.of_string payload in
  let test_encode_sliced =
    let enc = Xdr.Encode.create () in
    Test.make ~name:"datapath/xdr-encode-64KiB-sliced"
      (Staged.stage (fun () ->
           Xdr.Encode.reset enc;
           Xdr.Encode.uint32 enc 42l;
           Xdr.Encode.opaque enc payload_bytes;
           ignore (Xdr.Encode.to_iovec enc)))
  in
  let test_decode_slice =
    let wire =
      let enc = Xdr.Encode.create () in
      Xdr.Encode.opaque enc payload_bytes;
      Xdr.Encode.to_string enc
    in
    Test.make ~name:"datapath/xdr-decode-64KiB-slice"
      (Staged.stage (fun () ->
           let dec = Xdr.Decode.of_string wire in
           ignore (Xdr.Decode.opaque_slice dec)))
  in
  let test_framing_seed =
    Test.make ~name:"datapath/record-framing-64KiB-seed"
      (Staged.stage (fun () ->
           ignore (Oncrpc.Record.to_wire ~fragment_size:8192 payload)))
  in
  let test_framing_vectored =
    (* a sink transport that consumes slice descriptors without copying:
       what remains is exactly the framing work *)
    let sink =
      Oncrpc.Transport.make
        ~sendv:(fun iov ->
          Xdr.Iovec.iter
            (fun s -> ignore (Sys.opaque_identity s.Xdr.Iovec.len))
            iov)
        ~send:(fun _ _ _ -> ())
        ~recv:(fun _ _ _ -> 0)
        ~close:(fun () -> ())
        ()
    in
    let iov = Xdr.Iovec.of_string payload in
    Test.make ~name:"datapath/record-framing-64KiB-vectored"
      (Staged.stage (fun () ->
           Oncrpc.Record.writev ~fragment_size:8192 sink iov))
  in
  let test_upload =
    let upload_len = if quick then 8 lsl 20 else 64 lsl 20 in
    let engine = Simnet.Engine.create () in
    let server =
      Cricket.Server.create
        ~memory_capacity:(upload_len + (1 lsl 20))
        ~clock:(Cudasim.Context.engine_clock engine)
        ()
    in
    Cudasim.Context.set_functional (Cricket.Server.context server) false;
    let client = Cricket.Local.connect server in
    let d = Cricket.Client.malloc client upload_len in
    let buf = Bytes.create upload_len in
    Test.make
      ~name:(Printf.sprintf "datapath/upload-%dMiB-roundtrip" (upload_len lsr 20))
      (Staged.stage (fun () -> Cricket.Client.memcpy_h2d client ~dst:d buf))
  in
  [
    test_encode_sliced; test_decode_slice; test_framing_seed;
    test_framing_vectored; test_upload;
  ]

(* --- executable TCP stack group ---

   The checksum pair is the satellite acceptance comparison (folded 8-byte
   summation vs the byte-at-a-time reference, identical results by
   property test); the upload runs a full bulk transfer through
   Endpoint + Netdev on the all-offloads profile, which is the number the
   O(n) tx ring and TSO work moved by orders of magnitude vs the seed's
   Buffer.sub resend path. *)

let tcpstack_tests ~quick =
  let csum_len = 65536 in
  let buf = Bytes.init csum_len (fun i -> Char.chr (i land 0xff)) in
  let test_csum_bytewise =
    Test.make ~name:"tcpstack/checksum-64KiB-bytewise"
      (Staged.stage (fun () ->
           ignore
             (Tcpstack.Checksum.finish
                (Tcpstack.Checksum.sum_bytewise buf 0 csum_len))))
  in
  let test_csum_folded =
    Test.make ~name:"tcpstack/checksum-64KiB-folded"
      (Staged.stage (fun () ->
           ignore
             (Tcpstack.Checksum.finish (Tcpstack.Checksum.sum buf 0 csum_len))))
  in
  let upload_len = if quick then 8 lsl 20 else 64 lsl 20 in
  let profile =
    Simnet.Hostprofile.with_offloads Simnet.Hostprofile.bare_metal_linux
      Simnet.Offload.all
  in
  let test_upload =
    Test.make
      ~name:
        (Printf.sprintf "tcpstack/upload-%dMiB-simstack" (upload_len lsr 20))
      (Staged.stage (fun () ->
           ignore
             (Unikernel.Netbench.upload ~name:"bench" ~profile
                ~bytes:upload_len ())))
  in
  [ test_csum_bytewise; test_csum_folded; test_upload ]

(* --- RPC offload engine group ---

   The header-parse pair is the acceptance comparison for the in-device
   XDR parse: the device-model parser (fixed-offset reads, no decoder
   allocation) vs the software [Oncrpc.Message.decode] path it replaces
   on every small call. The doorbell test measures the host cost of
   staging + flushing a full 32-record batch, i.e. the per-batch
   overhead the syscall coalescing has to beat. *)

let rpcacc_tests ~quick:_ =
  let call_record =
    let enc = Xdr.Encode.create () in
    Oncrpc.Message.encode enc
      (Oncrpc.Message.call ~xid:7l ~prog:0x2f00_0e01 ~vers:1 ~proc:1 ());
    Xdr.Encode.opaque enc (Bytes.make 64 'x');
    Xdr.Encode.to_string enc
  in
  let test_parse_device =
    Test.make ~name:"rpcacc/parse-header-device"
      (Staged.stage (fun () ->
           ignore
             (Tcpstack.Rpcdev.parse_call_header call_record
               : (Tcpstack.Rpcdev.parsed, Tcpstack.Rpcdev.reject) result)))
  in
  let test_parse_software =
    Test.make ~name:"rpcacc/parse-header-software"
      (Staged.stage (fun () ->
           let dec = Xdr.Decode.of_string call_record in
           ignore (Oncrpc.Message.decode dec : Oncrpc.Message.t)))
  in
  let test_doorbell =
    let sink =
      Oncrpc.Transport.make
        ~sendv:(fun iov ->
          Xdr.Iovec.iter
            (fun s -> ignore (Sys.opaque_identity s.Xdr.Iovec.len))
            iov)
        ~send:(fun _ _ _ -> ())
        ~recv:(fun _ _ _ -> 0)
        ~close:(fun () -> ())
        ()
    in
    let bell =
      Oncrpc.Doorbell.wrap
        ~policy:
          { Oncrpc.Doorbell.max_records = 32; max_bytes = 1 lsl 20;
            deadline_ns = None }
        sink
    in
    let t = Oncrpc.Doorbell.transport bell in
    let iov = Xdr.Iovec.of_string call_record in
    Test.make ~name:"rpcacc/doorbell-batch-32"
      (Staged.stage (fun () ->
           for _ = 1 to 32 do
             Oncrpc.Record.writev t iov
           done;
           Oncrpc.Doorbell.flush bell))
  in
  [ test_parse_device; test_parse_software; test_doorbell ]

(* --- tenancy group ---

   Host-time cost of the serving core's hot path: the admission gate
   (two array ops per item) and a full DRR enqueue/next/charge cycle
   across 64 tenants with costs that force ring rotations. These bound
   the per-item scheduling overhead the 10k-client harness adds on top
   of the simulated GPU work. *)

let test_tenancy_admission =
  let adm = Tenancy.Admission.create ~n_tenants:64 () in
  let i = ref 0 in
  Test.make ~name:"tenancy/admission-offer-complete"
    (Staged.stage (fun () ->
         let tenant = !i land 63 in
         incr i;
         match Tenancy.Admission.offer adm ~tenant with
         | Ok () -> Tenancy.Admission.complete adm ~tenant
         | Error _ -> ()))

let test_tenancy_drr =
  let tenants = Array.init 64 (Printf.sprintf "t%02d") in
  let priorities = Array.make 64 0 in
  let d =
    Tenancy.Dispatch.create ~policy:Cricket.Sched.Round_robin
      ~quantum_ns:1_000 ~tenants ~priorities ()
  in
  let i = ref 0 in
  Test.make ~name:"tenancy/drr-enqueue-next-charge"
    (Staged.stage (fun () ->
         let tenant = !i land 63 in
         incr i;
         Tenancy.Dispatch.enqueue d ~tenant ();
         match Tenancy.Dispatch.next d with
         | Some (t, ()) -> Tenancy.Dispatch.charge d ~tenant:t ~cost_ns:700
         | None -> ()))

let test_par_chan =
  let q = Par.Chan.create () in
  Test.make ~name:"par/chan-push-pop"
    (Staged.stage (fun () ->
         Par.Chan.push q 1;
         ignore (Par.Chan.try_pop q : int option)))

let test_par_merge =
  (* 4 shards x 256 events, distinct interleaved timestamps: the k-way
     merge cost the sharded loadgen pays per run *)
  let streams =
    Array.init 4 (fun shard ->
        Array.init 256 (fun seq ->
            { Par.Merge.vtime = Int64.of_int ((seq * 7) + shard);
              shard; seq; payload = () }))
  in
  Test.make ~name:"par/merge-4x256"
    (Staged.stage (fun () -> ignore (Par.Merge.merge streams)))

let test_par_digest =
  let merged =
    Par.Merge.merge
      [| Array.init 1024 (fun seq ->
             { Par.Merge.vtime = Int64.of_int seq; shard = 0; seq;
               payload = () }) |]
  in
  Test.make ~name:"par/digest-1024"
    (Staged.stage (fun () -> ignore (Par.Merge.digest merged : int64)))

let test_par_pool =
  (* pool round-trip at domains:1 — the sequential-execution overhead the
     deterministic contract rides on (spawn cost excluded by design) *)
  Test.make ~name:"par/pool-32-jobs-1-domain"
    (Staged.stage (fun () ->
         ignore (Par.Pool.run ~domains:1 32 (fun i -> i * i) : int array)))

let all_tests =
  [
    test_table1; test_fig5a; test_fig5b; test_fig5c; test_fig6; test_fig7;
    test_xdr; test_record; test_lzss; test_netcost; test_sched;
    test_tenancy_admission; test_tenancy_drr;
    test_par_chan; test_par_merge; test_par_digest; test_par_pool;
  ]

let run ?(quick = false) () =
  print_endline "\n== Bechamel microbenchmarks (host time of the simulation pipeline) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if quick then
      (* CI smoke: enough runs per test for a stable ballpark, fast *)
      Benchmark.cfg ~limit:300 ~quota:(Time.second 0.05) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped =
    Test.make_grouped ~name:"repro" ~fmt:"%s %s"
      (all_tests @ datapath_tests ~quick @ tcpstack_tests ~quick
      @ rpcacc_tests ~quick)
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  Printf.printf "%-40s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> Printf.printf "%-40s %16.1f\n" name est
      | _ -> Printf.printf "%-40s %16s\n" name "n/a")
    rows
