(* benchctl: run individual paper experiments from the command line with
   explicit workload parameters — a finer-grained interface than
   bench/main.exe's all-at-once mode. *)

open Cmdliner

(* Minimal JSON emission for bench artifacts (BENCH_*.json): enough for
   flat objects/arrays of numbers and strings, no library needed. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let j_str s = "\"" ^ json_escape s ^ "\""
let j_int n = string_of_int n

let j_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else j_str "nan"

let j_list items = "[" ^ String.concat "," items ^ "]"

let j_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> j_str k ^ ":" ^ v) fields)
  ^ "}"

let write_json path json =
  let oc = open_out path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"OCaml domains to execute shards/scenarios on. Never \
                 changes stdout bytes, only wall-clock time.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"PATH"
           ~doc:"Also write a machine-readable result summary (including \
                 wall-clock throughput) to PATH.")

let config_conv =
  let parse s =
    match Unikernel.Config.find s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S (C, Rust, \"Linux VM\", \
                              Unikraft, Hermit)" s))
  in
  let print ppf c = Format.pp_print_string ppf c.Unikernel.Config.name in
  Arg.conv (parse, print)

let configs_arg =
  Arg.(value & opt_all config_conv Unikernel.Config.all
       & info [ "c"; "config" ] ~docv:"CONFIG"
           ~doc:"Configuration(s) to run (repeatable; default: all five).")

let report configs run =
  List.iter
    (fun cfg ->
      let m = run cfg in
      Format.printf "%a@." Unikernel.Runner.pp_measurement m)
    configs

(* --- table1 --- *)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"print the configuration matrix (Table 1)")
    Term.(
      const (fun () ->
          Printf.printf "%-9s %-5s %-12s %-10s %s\n" "Name" "app" "OS"
            "Hypervisor" "Network";
          List.iter print_endline (Unikernel.Config.table1_rows ()))
      $ const ())

(* --- apps --- *)

let iterations_arg default =
  Arg.(value & opt int default
       & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Iteration count.")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run functionally and verify numerics (slower; uses a \
                 reduced iteration count).")

let matrixmul_cmd =
  let run configs iterations verify =
    report configs (fun cfg ->
        let params = { Apps.Matrix_mul.paper with Apps.Matrix_mul.iterations } in
        if verify then
          Unikernel.Runner.run ~functional:true cfg
            (Apps.Matrix_mul.run ~verify:true
               { params with Apps.Matrix_mul.iterations = min iterations 5 })
        else
          Unikernel.Runner.run ~functional:false cfg
            (Apps.Matrix_mul.run ~verify:false params))
  in
  Cmd.v (Cmd.info "matrixmul" ~doc:"run the matrixMul proxy app (Fig. 5a)")
    Term.(const run $ configs_arg $ iterations_arg 100_000 $ verify_arg)

let solver_cmd =
  let run configs iterations verify =
    report configs (fun cfg ->
        let params =
          { Apps.Linear_solver.paper with Apps.Linear_solver.iterations }
        in
        if verify then
          Unikernel.Runner.run ~functional:true cfg
            (Apps.Linear_solver.run ~verify:true
               { params with Apps.Linear_solver.iterations = 1 })
        else
          Unikernel.Runner.run ~functional:false cfg
            (Apps.Linear_solver.run ~verify:false params))
  in
  Cmd.v
    (Cmd.info "solver" ~doc:"run the cuSolverDn_LinearSolver proxy app (Fig. 5b)")
    Term.(const run $ configs_arg $ iterations_arg 1_000 $ verify_arg)

let histogram_cmd =
  let run configs iterations verify =
    report configs (fun cfg ->
        let params = { Apps.Histogram.paper with Apps.Histogram.iterations } in
        if verify then
          Unikernel.Runner.run ~functional:true cfg
            (Apps.Histogram.run ~verify:true
               { params with Apps.Histogram.iterations = min iterations 3 })
        else
          Unikernel.Runner.run ~functional:false cfg
            (Apps.Histogram.run ~verify:false params))
  in
  Cmd.v (Cmd.info "histogram" ~doc:"run the histogram proxy app (Fig. 5c)")
    Term.(const run $ configs_arg $ iterations_arg 40_000 $ verify_arg)

(* --- micro --- *)

let micro_cmd =
  let which_conv =
    Arg.enum
      [ ("getdevicecount", Apps.Micro.Get_device_count);
        ("mallocfree", Apps.Micro.Malloc_free);
        ("launch", Apps.Micro.Kernel_launch) ]
  in
  let which_arg =
    Arg.(required & pos 0 (some which_conv) None
         & info [] ~docv:"WHICH" ~doc:"getdevicecount | mallocfree | launch")
  in
  let run configs which calls =
    List.iter
      (fun cfg ->
        let result = ref None in
        let (_ : Unikernel.Runner.measurement) =
          Unikernel.Runner.run ~functional:false cfg (fun env ->
              result := Some (Apps.Micro.run ~calls which env))
        in
        match !result with
        | Some r ->
            Printf.printf "%-9s %s x %d: %s (%.2f us/call)\n"
              cfg.Unikernel.Config.name
              (Apps.Micro.which_to_string which)
              calls
              (Format.asprintf "%a" Simnet.Time.pp r.Apps.Micro.elapsed)
              (r.Apps.Micro.ns_per_call /. 1e3)
        | None -> ())
      configs
  in
  Cmd.v (Cmd.info "micro" ~doc:"CUDA API micro-benchmarks (Fig. 6)")
    Term.(
      const run $ configs_arg $ which_arg
      $ Arg.(value & opt int 100_000
             & info [ "calls" ] ~docv:"N" ~doc:"Number of calls."))

(* --- bandwidth --- *)

let bandwidth_cmd =
  let run configs mib =
    List.iter
      (fun cfg ->
        let result = ref None in
        let (_ : Unikernel.Runner.measurement) =
          Unikernel.Runner.run ~functional:false cfg (fun env ->
              result := Some (Apps.Bandwidth.run ~verify:false env))
        in
        ignore mib;
        match !result with
        | Some (h2d, d2h) ->
            Printf.printf "%-9s H2D %8.1f MiB/s   D2H %8.1f MiB/s\n"
              cfg.Unikernel.Config.name h2d.Apps.Bandwidth.mib_per_s
              d2h.Apps.Bandwidth.mib_per_s
        | None -> ())
      configs
  in
  Cmd.v (Cmd.info "bandwidth" ~doc:"bandwidthTest port (Fig. 7)")
    Term.(
      const run $ configs_arg
      $ Arg.(value & opt int 512
             & info [ "mib" ] ~docv:"MIB" ~doc:"Total transfer size in MiB."))

(* --- pipeline --- *)

let pipeline_cmd =
  let mode_conv =
    let parse s =
      match s with
      | "sync" -> Ok Apps.Pipeline.Sync
      | _ -> (
          match int_of_string_opt s with
          | Some d when d > 0 -> Ok (Apps.Pipeline.Async d)
          | _ ->
              Error
                (`Msg
                   (Printf.sprintf
                      "bad mode %S (expected \"sync\" or a positive depth)" s)))
    in
    let print ppf m = Format.pp_print_string ppf (Apps.Pipeline.mode_name m) in
    Arg.conv (parse, print)
  in
  let run configs modes rounds elements =
    let params = { Apps.Pipeline.rounds; elements } in
    List.iter
      (fun cfg ->
        let results =
          List.map (fun mode -> Apps.Pipeline.measure ~params mode cfg) modes
        in
        let baseline = List.hd results in
        List.iter
          (fun (r : Apps.Pipeline.result) ->
            Printf.printf
              "%-9s %-9s %10.3f ms %10.0f calls/s %8.2fx %s\n"
              cfg.Unikernel.Config.name
              (Apps.Pipeline.mode_name r.Apps.Pipeline.mode)
              (Simnet.Time.to_float_ms r.Apps.Pipeline.elapsed)
              r.Apps.Pipeline.calls_per_s
              (Simnet.Time.to_float_s baseline.Apps.Pipeline.elapsed
              /. Simnet.Time.to_float_s r.Apps.Pipeline.elapsed)
              (if r.Apps.Pipeline.digest = baseline.Apps.Pipeline.digest then
                 "bit-exact"
               else "DIGEST MISMATCH"))
          results)
      configs
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"stream-ordered async RPC pipelining ablation (sync vs \
             pipeline depths)")
    Term.(
      const run $ configs_arg
      $ Arg.(value
             & opt_all mode_conv
                 [ Apps.Pipeline.Sync; Apps.Pipeline.Async 1;
                   Apps.Pipeline.Async 4; Apps.Pipeline.Async 16;
                   Apps.Pipeline.Async 64 ]
             & info [ "m"; "mode" ] ~docv:"MODE"
                 ~doc:"Mode(s): \"sync\" or a pipeline depth (repeatable).")
      $ Arg.(value & opt int Apps.Pipeline.default.Apps.Pipeline.rounds
             & info [ "rounds" ] ~docv:"N" ~doc:"Upload+launch rounds.")
      $ Arg.(value & opt int Apps.Pipeline.default.Apps.Pipeline.elements
             & info [ "elements" ] ~docv:"N" ~doc:"f32 elements per vector."))

(* --- multitenant --- *)

let multitenant_cmd =
  let policy_conv =
    Arg.enum
      [ ("fifo", Cricket.Sched.Fifo); ("rr", Cricket.Sched.Round_robin);
        ("priority", Cricket.Sched.Priority) ]
  in
  let run policy tenants steps =
    let work _ =
      List.init steps (fun _ (client : Cricket.Client.t) ->
          let d = Cricket.Client.malloc client (1 lsl 16) in
          Cricket.Client.memset client ~ptr:d ~value:0 ~len:(1 lsl 16);
          Cricket.Client.free client d)
    in
    let specs =
      List.init tenants (fun i ->
          {
            Unikernel.Multitenant.name = Printf.sprintf "uk%d" i;
            config = Unikernel.Config.hermit;
            priority = (if i = 0 then 5 else 1);
            work = work i;
          })
    in
    let report = Unikernel.Multitenant.run ~policy ~functional:false specs in
    Format.printf "%a" Unikernel.Multitenant.pp_report report
  in
  Cmd.v
    (Cmd.info "multitenant"
       ~doc:"N unikernel tenants sharing one Cricket server")
    Term.(
      const run
      $ Arg.(value & opt policy_conv Cricket.Sched.Round_robin
             & info [ "policy" ] ~docv:"POLICY" ~doc:"fifo | rr | priority")
      $ Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N")
      $ Arg.(value & opt int 20 & info [ "steps" ] ~docv:"N"
             ~doc:"GPU work items per tenant."))

(* --- offloads --- *)

let offloads_cmd =
  let run configs mib device_off =
    let bytes = mib lsl 20 in
    let device =
      if device_off then Simnet.Offload.none else Simnet.Offload.all
    in
    let results =
      List.filter_map
        (fun (cfg : Unikernel.Config.t) ->
          match cfg.Unikernel.Config.hypervisor with
          | None -> None
          | Some _ ->
              Some
                (Unikernel.Netbench.upload ~device
                   ~name:cfg.Unikernel.Config.name
                   ~profile:cfg.Unikernel.Config.profile ~bytes ()))
        configs
    in
    let native =
      Unikernel.Netbench.upload ~device ~name:"native"
        ~profile:Unikernel.Config.server_profile ~bytes ()
    in
    List.iter
      (fun (r, frac) ->
        Format.printf "%a  (%.1f%% of native)@." Unikernel.Netbench.pp_result
          r (100.0 *. frac))
      (Unikernel.Netbench.relative ~baseline:native (native :: results))
  in
  Cmd.v
    (Cmd.info "offloads"
       ~doc:"bulk-upload offload ablation on the executable TCP stack \
             (Endpoint + Netdev): per-config virtio-net feature \
             negotiation, TSO/GRO/checksum effects, Figure 7 ordering")
    Term.(
      const run $ configs_arg
      $ Arg.(value & opt int 64
             & info [ "mib" ] ~docv:"MIB" ~doc:"Upload size in MiB.")
      $ Arg.(value & flag
             & info [ "no-device-offloads" ]
                 ~doc:"Negotiate against a device advertising no feature \
                       bits (forces every config onto the software path)."))

(* --- faults --- *)

let faults_cmd =
  let run configs iterations dim seed crash_after rates =
    let params =
      {
        Apps.Matrix_mul.ha = dim;
        wa = dim;
        wb = dim;
        iterations;
      }
    in
    List.iter
      (fun cfg ->
        Printf.printf
          "%-9s %-8s %12s %9s %8s %8s %10s %9s %8s %s\n"
          cfg.Unikernel.Config.name "rate" "elapsed" "slowdown" "injected"
          "retries" "recoveries" "replayed" "dup-hits" "digest";
        let baseline = ref None in
        List.iter
          (fun rate ->
            let plan =
              {
                Simnet.Fault.none with
                Simnet.Fault.seed;
                drop_rate = rate;
                crashes =
                  (if crash_after > 0 then
                     [ { Simnet.Fault.after_records = crash_after;
                         down_for = Simnet.Time.ms 2 } ]
                   else []);
              }
            in
            let digest = ref "" in
            let report =
              Unikernel.Runner.run_with_faults ~functional:true ~plan cfg
                (Apps.Matrix_mul.run ~verify:true ~digest_out:digest params)
            in
            let elapsed =
              report.Unikernel.Runner.measurement.Unikernel.Runner.elapsed
            in
            let base_elapsed, base_digest =
              match !baseline with
              | Some b -> b
              | None ->
                  baseline := Some (elapsed, !digest);
                  (elapsed, !digest)
            in
            Printf.printf
              "%-9s %-8g %12s %8.2fx %8d %8d %10d %9d %8d %s\n"
              cfg.Unikernel.Config.name rate
              (Format.asprintf "%a" Simnet.Time.pp elapsed)
              (Simnet.Time.to_float_s elapsed
              /. Simnet.Time.to_float_s base_elapsed)
              (Simnet.Fault.injected report.Unikernel.Runner.faults)
              report.Unikernel.Runner.rpc_retries
              report.Unikernel.Runner.recoveries
              report.Unikernel.Runner.replayed_calls
              report.Unikernel.Runner.dup_hits
              (if !digest = base_digest then "bit-exact"
               else "DIGEST MISMATCH"))
          rates)
      configs
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"fault-injection ablation: matrixMul under record-drop rates \
             (optionally with a scheduled server crash), reporting \
             retries, recoveries and slowdown vs the fault-free run")
    Term.(
      const run $ configs_arg
      $ Arg.(value & opt int 500
             & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Kernel launches.")
      $ Arg.(value & opt int 64
             & info [ "dim" ] ~docv:"D"
                 ~doc:"Square matrix dimension (multiple of 32; small keeps \
                       the functional run fast).")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
             ~doc:"Fault-plan PRNG seed.")
      $ Arg.(value & opt int 0
             & info [ "crash-after" ] ~docv:"N"
                 ~doc:"Also crash (and restart) the server after N records \
                       (0 = never).")
      $ Arg.(value & opt_all float [ 0.0; 1e-4; 1e-3; 1e-2 ]
             & info [ "r"; "rate" ] ~docv:"RATE"
                 ~doc:"Record drop rate(s) (repeatable)."))

(* --- latency --- *)

let latency_cmd =
  (* per-layer latency decomposition of a short matrixMul run: the
     Figure 4/5 story told by the observability spans instead of the
     aggregate measurement. Layers nest shim ⊇ rpc ⊇ (net + dispatch),
     so subtracting the inner total from the outer gives exclusive time. *)
  let run configs iterations tcp trace_out =
    let ns_ms ns = Int64.to_float ns /. 1e6 in
    Printf.printf "%-9s %10s %9s %9s %9s %9s %9s %9s\n" "config" "elapsed"
      "shim" "rpc" "network" "dispatch" "gpu" "app";
    List.iter
      (fun cfg ->
        let obs = Obs.Recorder.create () in
        Obs.Recorder.set_enabled obs true;
        let params =
          { Apps.Matrix_mul.ha = 64; wa = 64; wb = 64; iterations }
        in
        let app = Apps.Matrix_mul.run ~verify:true params in
        let m =
          if tcp then fst (Unikernel.Runner.run_tcp ~obs cfg app)
          else Unikernel.Runner.run ~obs cfg app
        in
        let total l = Obs.Recorder.layer_total_ns obs l in
        let excl outer inner = Int64.max 0L (Int64.sub outer inner) in
        let shim_t = total "shim" and rpc_t = total "rpc" in
        let net_t = total "net" and disp_t = total "dispatch" in
        let gpu_t = total "gpu" in
        let elapsed = m.Unikernel.Runner.elapsed in
        Printf.printf
          "%-9s %9.3fms %8.3fms %8.3fms %8.3fms %8.3fms %8.3fms %8.3fms\n"
          cfg.Unikernel.Config.name (ns_ms elapsed)
          (ns_ms (excl shim_t rpc_t))
          (ns_ms (excl rpc_t (Int64.add net_t disp_t)))
          (ns_ms net_t)
          (ns_ms (excl disp_t gpu_t))
          (ns_ms gpu_t)
          (ns_ms (excl elapsed shim_t));
        (match Obs.Recorder.histogram obs "span/shim" with
        | Some h ->
            Printf.printf "          per-call shim latency: %s\n"
              (Format.asprintf "%a" Obs.Histogram.pp h)
        | None -> ());
        (* buffer-pool effectiveness across the run, as counters *)
        let p = Oncrpc.Pool.stats Oncrpc.Pool.default in
        Obs.Recorder.incr obs ~by:p.Oncrpc.Pool.hits "pool.hits";
        Obs.Recorder.incr obs ~by:p.Oncrpc.Pool.misses "pool.misses";
        match trace_out with
        | Some file ->
            let path =
              Printf.sprintf "%s.%s.json" file
                (String.map
                   (fun c -> if c = ' ' then '-' else Char.lowercase_ascii c)
                   cfg.Unikernel.Config.name)
            in
            let oc = open_out path in
            output_string oc (Obs.Trace_export.to_json obs);
            close_out oc;
            Printf.printf "          trace written to %s\n" path
        | None -> ())
      configs
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"per-layer latency breakdown (client shim / RPC / network / \
             server dispatch / GPU) of a short matrixMul run, from the \
             observability spans; optionally dumps Chrome trace_event JSON")
    Term.(
      const run $ configs_arg
      $ Arg.(value & opt int 5
             & info [ "n"; "iterations" ] ~docv:"N" ~doc:"Kernel launches.")
      $ Arg.(value & flag
             & info [ "tcp" ]
                 ~doc:"Route the RPC bytes through the executable TCP stack \
                       instead of the closed-form channel.")
      $ Arg.(value & opt (some string) None
             & info [ "trace-out" ] ~docv:"PREFIX"
                 ~doc:"Also write a Chrome trace_event JSON file per config \
                       (PREFIX.<config>.json; open in chrome://tracing)."))

(* --- trace --- *)

let trace_cmd =
  let run iterations =
    let engine = Simnet.Engine.create () in
    let server =
      Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
    in
    Cricket.Trace.set_enabled (Cricket.Server.trace server) true;
    Cudasim.Context.set_functional (Cricket.Server.context server) false;
    let client = Cricket.Local.connect server in
    Apps.Matrix_mul.run ~verify:false
      { Apps.Matrix_mul.default with Apps.Matrix_mul.iterations }
      { Unikernel.Runner.client; engine; cfg = Unikernel.Config.rust_native;
        server };
    List.iter
      (fun e -> Format.printf "%a@." Cricket.Trace.pp_entry e)
      (Cricket.Trace.entries (Cricket.Server.trace server))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"trace the RPC stream of a short matrixMul run (virtual              timestamps, per-call durations)")
    Term.(
      const run
      $ Arg.(value & opt int 5 & info [ "n"; "iterations" ] ~docv:"N"))

(* --- tenants --- *)

let tenants_cmd =
  let policy_conv =
    Arg.enum
      [ ("fifo", Cricket.Sched.Fifo); ("rr", Cricket.Sched.Round_robin);
        ("priority", Cricket.Sched.Priority) ]
  in
  let run smoke uniform tenants items seed policy mean_gap_us
      per_tenant_window global_window high_water shards domains json_out =
    let base = if smoke then Tenancy.Loadgen.smoke else Tenancy.Loadgen.default in
    let override v = function Some x -> x | None -> v in
    let params =
      {
        base with
        Tenancy.Loadgen.tenants = override base.Tenancy.Loadgen.tenants tenants;
        items_per_tenant = override base.Tenancy.Loadgen.items_per_tenant items;
        seed = override base.Tenancy.Loadgen.seed seed;
        mean_gap =
          (match mean_gap_us with
          | Some us -> Simnet.Time.us us
          | None -> base.Tenancy.Loadgen.mean_gap);
        policies =
          (match policy with
          | Some p -> [ p ]
          | None -> base.Tenancy.Loadgen.policies);
        admission =
          {
            Tenancy.Admission.per_tenant_window =
              override base.Tenancy.Loadgen.admission
                .Tenancy.Admission.per_tenant_window per_tenant_window;
            global_window =
              override base.Tenancy.Loadgen.admission
                .Tenancy.Admission.global_window global_window;
            high_water =
              override base.Tenancy.Loadgen.admission
                .Tenancy.Admission.high_water high_water;
          };
        uniform = uniform || base.Tenancy.Loadgen.uniform;
        shards = override base.Tenancy.Loadgen.shards shards;
        domains;
      }
    in
    (* Time each policy separately so calls/sec is per policy. Wall-clock
       goes to stderr and the JSON file only: stdout must stay
       byte-identical across --domains counts (CI diffs it). *)
    let timed =
      List.map
        (fun p ->
          let t0 = Unix.gettimeofday () in
          let r = Tenancy.Loadgen.run_policy params p in
          (r, Unix.gettimeofday () -. t0))
        params.Tenancy.Loadgen.policies
    in
    print_string (Tenancy.Loadgen.to_string (List.map fst timed));
    let throughput (r : Tenancy.Loadgen.report) wall =
      if wall > 0. then float_of_int r.Tenancy.Loadgen.completed /. wall
      else 0.
    in
    List.iter
      (fun ((r : Tenancy.Loadgen.report), wall) ->
        Printf.eprintf "wall: %-8s domains=%d %8.3f s %12.0f calls/s\n%!"
          (Cricket.Sched.policy_to_string r.Tenancy.Loadgen.policy)
          params.Tenancy.Loadgen.domains wall (throughput r wall))
      timed;
    match json_out with
    | None -> ()
    | Some path ->
        let policy_obj ((r : Tenancy.Loadgen.report), wall) =
          j_obj
            [
              ("policy",
               j_str (Cricket.Sched.policy_to_string r.Tenancy.Loadgen.policy));
              ("completed", j_int r.Tenancy.Loadgen.completed);
              ("rejected_quota", j_int r.Tenancy.Loadgen.rejected_quota);
              ("rejected_overload", j_int r.Tenancy.Loadgen.rejected_overload);
              ("rejected_expired", j_int r.Tenancy.Loadgen.rejected_expired);
              ("errors", j_int r.Tenancy.Loadgen.errors);
              ("makespan_ms", j_float r.Tenancy.Loadgen.makespan_ms);
              ("p50_us",
               j_float r.Tenancy.Loadgen.latency.Tenancy.Loadgen.p50_us);
              ("p99_us",
               j_float r.Tenancy.Loadgen.latency.Tenancy.Loadgen.p99_us);
              ("jain", j_float r.Tenancy.Loadgen.jain);
              ("events", j_int r.Tenancy.Loadgen.events);
              ("digest",
               j_str (Printf.sprintf "%016Lx" r.Tenancy.Loadgen.digest));
              ("wall_s", j_float wall);
              ("calls_per_sec", j_float (throughput r wall));
            ]
        in
        write_json path
          (j_obj
             [
               ("bench", j_str "tenants");
               ("tenants", j_int params.Tenancy.Loadgen.tenants);
               ("items_per_tenant",
                j_int params.Tenancy.Loadgen.items_per_tenant);
               ("seed", j_int params.Tenancy.Loadgen.seed);
               ("shards", j_int params.Tenancy.Loadgen.shards);
               ("domains", j_int params.Tenancy.Loadgen.domains);
               ("policies", j_list (List.map policy_obj timed));
             ])
  in
  Cmd.v
    (Cmd.info "tenants"
       ~doc:"multi-tenant serving-core load harness: thousands of simulated \
             clients with Poisson arrivals and a mixed workload against one \
             Cricket server, under leases, admission windows and fair-share \
             dispatch; reports per-policy p50/p99 sojourn, typed rejection \
             counts and the Jain fairness index. Seed-deterministic: equal \
             seeds print byte-identical reports.")
    Term.(
      const run
      $ Arg.(value & flag
             & info [ "smoke" ]
                 ~doc:"CI-sized run (1k tenants, tighter windows).")
      $ Arg.(value & flag
             & info [ "uniform" ]
                 ~doc:"Identical cheap items for every tenant (fairness \
                       baseline: DRR should push Jain toward 1).")
      $ Arg.(value & opt (some int) None & info [ "tenants" ] ~docv:"N")
      $ Arg.(value & opt (some int) None
             & info [ "items" ] ~docv:"N" ~doc:"Work items per tenant.")
      $ Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & opt (some policy_conv) None
             & info [ "policy" ] ~docv:"POLICY"
                 ~doc:"Run one policy only (fifo | rr | priority); default \
                       runs all three.")
      $ Arg.(value & opt (some int) None
             & info [ "mean-gap-us" ] ~docv:"US"
                 ~doc:"Per-tenant Poisson inter-arrival mean.")
      $ Arg.(value & opt (some int) None
             & info [ "per-tenant-window" ] ~docv:"N")
      $ Arg.(value & opt (some int) None & info [ "global-window" ] ~docv:"N")
      $ Arg.(value & opt (some int) None & info [ "high-water" ] ~docv:"N")
      $ Arg.(value & opt (some int) None
             & info [ "shards" ] ~docv:"N"
                 ~doc:"Logical serving shards (part of the workload \
                       definition; changing it changes the report).")
      $ domains_arg $ json_arg)

(* --- migrate --- *)

let migrate_cmd =
  let run smoke seed buf_kib batches dirty_kib budget_us domains json_out =
    let module MH = Migrate.Harness in
    let module ME = Migrate.Engine in
    let buf_kib =
      match buf_kib with Some b -> b | None -> if smoke then 256 else 1024
    in
    let batches =
      match batches with Some b -> b | None -> if smoke then 12 else 24
    in
    let pre = batches / 3 in
    let dirty_rates =
      match dirty_kib with
      | Some d -> [ d ]
      | None -> if smoke then [ 16; 64 ] else [ 16; 64; 256 ]
    in
    let config =
      { ME.default with ME.pause_budget = Simnet.Time.us budget_us }
    in
    let params profile dirty fault =
      { MH.profile; buf_kib; batches; pre_batches = pre;
        dirty_kib = min dirty buf_kib; seed; fault; config }
    in
    Printf.printf
      "live session migration: pre-copy with incremental GPU checkpoints \
       (seed %d)\n"
      seed;
    Printf.printf
      "buffer %d KiB, %d write batches (%d before migration), stop \
       threshold %d KiB, max %d rounds, pause budget %.0f us\n\n"
      buf_kib batches pre
      (config.ME.stop_bytes / 1024)
      config.ME.max_rounds
      (Simnet.Time.to_float_us config.ME.pause_budget);
    Printf.printf "%-10s %11s %6s %9s %10s %10s %6s %9s %11s  %s\n" "profile"
      "dirty/batch" "rounds" "base KiB" "delta KiB" "full KiB" "saved"
      "pause us" "downtime ok" "state";
    (* Every sweep point is an independent simulation: run them across
       domains, then print rows in job order — stdout stays byte-identical
       for any --domains (CI diffs it). Wall-clock goes only to the JSON
       artifact. *)
    let sweep_jobs =
      List.concat_map
        (fun (cfg : Unikernel.Config.t) ->
          List.map (fun dirty -> (cfg, dirty)) dirty_rates)
        Unikernel.Config.all
    in
    let sweep =
      Par.Pool.map ~domains
        (fun ((cfg : Unikernel.Config.t), dirty) ->
          let t0 = Unix.gettimeofday () in
          let r = MH.run (params cfg dirty None) in
          let wall = Unix.gettimeofday () -. t0 in
          match r.MH.outcome with
          | MH.Completed rep ->
              let kib n = float_of_int n /. 1024. in
              let saved =
                100.
                *. (1.
                   -. float_of_int rep.ME.total_bytes
                      /. float_of_int (max 1 rep.ME.full_total_bytes))
              in
              let pause_us = Simnet.Time.to_float_us rep.ME.pause in
              let downtime_ok =
                Simnet.Time.compare rep.ME.pause rep.ME.pause_budget <= 0
              in
              ( Printf.sprintf
                  "%-10s %8d KiB %6d %9.1f %10.1f %10.1f %5.1f%% %9.1f %11s  %s\n"
                  cfg.Unikernel.Config.name dirty
                  (List.length rep.ME.rounds)
                  (kib rep.ME.base_bytes)
                  (kib (rep.ME.total_bytes - rep.ME.base_bytes))
                  (kib rep.ME.full_total_bytes)
                  saved pause_us
                  (if downtime_ok then "yes" else "NO")
                  (if r.MH.digest_ok then "digest ok" else "DIGEST MISMATCH"),
                j_obj
                  [
                    ("profile", j_str cfg.Unikernel.Config.name);
                    ("dirty_kib", j_int dirty);
                    ("outcome", j_str "completed");
                    ("rounds", j_int (List.length rep.ME.rounds));
                    ("base_kib", j_float (kib rep.ME.base_bytes));
                    ("delta_kib",
                     j_float (kib (rep.ME.total_bytes - rep.ME.base_bytes)));
                    ("full_kib", j_float (kib rep.ME.full_total_bytes));
                    ("saved_pct", j_float saved);
                    ("pause_us", j_float pause_us);
                    ("downtime_ok", if downtime_ok then "true" else "false");
                    ("digest_ok", if r.MH.digest_ok then "true" else "false");
                    ("wall_s", j_float wall);
                  ] )
          | MH.Aborted { phase; reason } ->
              ( Printf.sprintf "%-10s %8d KiB  aborted at %s: %s\n"
                  cfg.Unikernel.Config.name dirty
                  (ME.phase_to_string phase)
                  reason,
                j_obj
                  [
                    ("profile", j_str cfg.Unikernel.Config.name);
                    ("dirty_kib", j_int dirty);
                    ("outcome", j_str "aborted");
                    ("phase", j_str (ME.phase_to_string phase));
                    ("reason", j_str reason);
                    ("wall_s", j_float wall);
                  ] ))
        sweep_jobs
    in
    List.iter (fun (row, _) -> print_string row) sweep;
    (* Adversarial plans against the migration channel. Every scenario must
       end in one of exactly two states: session handed off (destination
       serving) or clean rollback (source serving) — never half-moved. *)
    let chaos_dirty = List.nth dirty_rates (List.length dirty_rates - 1) in
    Printf.printf
      "\nfault injection on the migration channel (rust profile, %d \
       KiB/batch):\n"
      chaos_dirty;
    let scenarios =
      [
        ("drop 20% of records", Simnet.Fault.drops ~seed 0.20);
        ( "duplicate 20%, delay 30% by 200 us",
          { Simnet.Fault.none with Simnet.Fault.seed; duplicate_rate = 0.2;
            delay_rate = 0.3; delay = Simnet.Time.us 200 } );
        ( "partition until t=2 ms, then heal",
          { Simnet.Fault.none with Simnet.Fault.partitions =
              [ (Simnet.Time.zero, Simnet.Time.ms 2) ] } );
        ( "destination crash early (after 3 records)",
          { Simnet.Fault.none with Simnet.Fault.crashes =
              [ { Simnet.Fault.after_records = 3;
                  down_for = Simnet.Time.us 300 } ] } );
        ( "destination crash late (after 12 records)",
          { Simnet.Fault.none with Simnet.Fault.crashes =
              [ { Simnet.Fault.after_records = 12;
                  down_for = Simnet.Time.us 300 } ] } );
      ]
    in
    let chaos =
      Par.Pool.map ~domains
        (fun (name, plan) ->
          let t0 = Unix.gettimeofday () in
          let r =
            MH.run (params Unikernel.Config.rust_native chaos_dirty (Some plan))
          in
          let wall = Unix.gettimeofday () -. t0 in
          let injected =
            match r.MH.fault_stats with
            | Some s -> Simnet.Fault.injected s + s.Simnet.Fault.crashes_fired
            | None -> 0
          in
          let state =
            match r.MH.outcome with
            | MH.Completed rep ->
                Printf.sprintf "handed off in %d rounds, pause %.1f us"
                  (List.length rep.ME.rounds)
                  (Simnet.Time.to_float_us rep.ME.pause)
            | MH.Aborted { phase; _ } ->
                Printf.sprintf "rolled back at %s, source serving"
                  (ME.phase_to_string phase)
          in
          let authority =
            match r.MH.outcome with
            | MH.Completed _ ->
                if r.MH.dst_audit.MH.lease_present
                   && r.MH.dst_audit.MH.ledger_live
                   && not r.MH.src_audit.MH.lease_present
                then "lease on dst"
                else "LEASE LEAK"
            | MH.Aborted _ ->
                if r.MH.src_audit.MH.lease_present
                   && r.MH.src_audit.MH.ledger_live
                   && not r.MH.dst_audit.MH.lease_present
                then "lease on src"
                else "LEASE LEAK"
          in
          ( Printf.sprintf "  %-42s %3d faults  %-38s %-12s %s\n" name injected
              state authority
              (if r.MH.digest_ok then "digest ok" else "DIGEST MISMATCH"),
            j_obj
              [
                ("scenario", j_str name);
                ("faults", j_int injected);
                ("state", j_str state);
                ("authority", j_str authority);
                ("digest_ok", if r.MH.digest_ok then "true" else "false");
                ("wall_s", j_float wall);
              ] ))
        scenarios
    in
    List.iter (fun (row, _) -> print_string row) chaos;
    match json_out with
    | None -> ()
    | Some path ->
        write_json path
          (j_obj
             [
               ("bench", j_str "migrate");
               ("seed", j_int seed);
               ("domains", j_int domains);
               ("buf_kib", j_int buf_kib);
               ("batches", j_int batches);
               ("sweep", j_list (List.map snd sweep));
               ("chaos", j_list (List.map snd chaos));
             ])
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "live-migrate an active GPU session between two simulated Cricket \
          servers using incremental (dirty-page) checkpoints: pre-copy \
          delta rounds while the source keeps serving, stop-and-copy under \
          a pause budget, lease handoff at commit. Sweeps downtime vs \
          dirty-page rate across the Table 1 host profiles, then replays \
          adversarial fault plans (loss, duplication, partition, \
          mid-transfer destination crash) on the migration channel. \
          Seed-deterministic: equal seeds print byte-identical reports.")
    Term.(
      const run
      $ Arg.(value & flag
             & info [ "smoke" ] ~doc:"CI-sized run (smaller buffer, fewer \
                                      rates).")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED")
      $ Arg.(value & opt (some int) None
             & info [ "buf-kib" ] ~docv:"KIB"
                 ~doc:"Tenant device buffer size.")
      $ Arg.(value & opt (some int) None
             & info [ "batches" ] ~docv:"N" ~doc:"Total write batches.")
      $ Arg.(value & opt (some int) None
             & info [ "dirty-kib" ] ~docv:"KIB"
                 ~doc:"Bytes rewritten per batch (one rate instead of the \
                       sweep).")
      $ Arg.(value & opt int 5000
             & info [ "pause-budget-us" ] ~docv:"US"
                 ~doc:"Abort instead of committing if stop-and-copy exceeds \
                       this.")
      $ domains_arg $ json_arg)

(* --- rpcacc --- *)

let rpcacc_cmd =
  let run smoke calls arg_bytes window domains json_out =
    let module RB = Unikernel.Rpcbench in
    let calls =
      match calls with Some c -> c | None -> if smoke then 384 else 2048
    in
    let offload_str o = Format.asprintf "%a" Simnet.Offload.pp o in
    Printf.printf
      "RPC small-call throughput: software parse vs device parse vs device \
       parse + doorbell batching\n";
    Printf.printf
      "%d calls of %d-byte args, pipeline window %d, virtual-time \
       throughput over the executable TCP stack\n\n"
      calls arg_bytes window;
    Printf.printf "%-12s %-22s %-42s %10s %8s %10s %8s %8s %9s\n" "profile"
      "mode" "negotiated" "kcalls/s" "speedup" "parse-hit" "steered"
      "flushes" "avg-batch";
    (* Every cell is an independent simulation: run them across domains
       and print in job order, so stdout is byte-identical for any
       --domains value (CI diffs it). *)
    let jobs =
      List.concat_map
        (fun profile -> List.map (fun mode -> (profile, mode)) RB.modes)
        (RB.profiles ())
    in
    let cells =
      Par.Pool.map ~domains
        (fun (profile, mode) ->
          let t0 = Unix.gettimeofday () in
          let r = RB.run ~calls ~arg_bytes ~window ~profile ~mode () in
          let wall = Unix.gettimeofday () -. t0 in
          (r, wall))
        jobs
    in
    let by_profile =
      List.map
        (fun (name, _) ->
          ( name,
            List.filter (fun (r, _) -> r.RB.profile = name) cells ))
        (RB.profiles ())
    in
    let profile_objs =
      List.map
        (fun (name, cells) ->
          let software =
            List.find (fun (r, _) -> r.RB.mode = RB.Software) cells
            |> fun (r, _) -> r.RB.calls_per_sec
          in
          let mode_objs =
            List.map
              (fun ((r : RB.result), wall) ->
                let speedup =
                  if software > 0. then r.RB.calls_per_sec /. software else 0.
                in
                let flushes, avg_batch =
                  match r.RB.doorbell with
                  | Some d when d.Oncrpc.Doorbell.flushes > 0 ->
                      ( d.Oncrpc.Doorbell.flushes,
                        float_of_int d.Oncrpc.Doorbell.batched
                        /. float_of_int d.Oncrpc.Doorbell.flushes )
                  | _ -> (0, 0.)
                in
                let parse_hits, steered =
                  match r.RB.rpcdev with
                  | Some s ->
                      (s.Tcpstack.Rpcdev.parse_hits, s.Tcpstack.Rpcdev.steered)
                  | None -> (0, 0)
                in
                Printf.printf
                  "%-12s %-22s %-42s %10.1f %7.2fx %10d %8d %8d %9.1f\n"
                  r.RB.profile (RB.mode_name r.RB.mode)
                  (offload_str r.RB.negotiated)
                  (r.RB.calls_per_sec /. 1e3)
                  speedup parse_hits steered flushes avg_batch;
                j_obj
                  [
                    ("mode", j_str (RB.mode_name r.RB.mode));
                    ("negotiated", j_str (offload_str r.RB.negotiated));
                    ("calls_per_sec", j_float r.RB.calls_per_sec);
                    ("speedup", j_float speedup);
                    ("elapsed_us",
                     j_float (Simnet.Time.to_float_us r.RB.elapsed));
                    ("parse_hits", j_int parse_hits);
                    ("steered", j_int steered);
                    ("flushes", j_int flushes);
                    ("avg_batch", j_float avg_batch);
                    ("dup_hits", j_int r.RB.dup_hits);
                    ("admission_rejects", j_int r.RB.admission_rejects);
                    ("reply_digest",
                     j_str (Printf.sprintf "%016Lx" r.RB.reply_digest));
                    ("wall_s", j_float wall);
                  ])
              cells
          in
          let digests =
            List.map (fun (r, _) -> r.RB.reply_digest) cells
          in
          let parity =
            match digests with
            | [] -> true
            | d :: rest -> List.for_all (Int64.equal d) rest
          in
          Printf.printf "%-12s %-22s reply streams byte-identical: %s\n" name
            "(digest parity)"
            (if parity then "yes" else "NO — MODES DIVERGE");
          j_obj
            [
              ("profile", j_str name);
              ("digest_parity", if parity then "true" else "false");
              ("modes", j_list mode_objs);
            ])
        by_profile
    in
    match json_out with
    | None -> ()
    | Some path ->
        write_json path
          (j_obj
             [
               ("bench", j_str "rpcacc");
               ("calls", j_int calls);
               ("arg_bytes", j_int arg_bytes);
               ("window", j_int window);
               ("profiles", j_list profile_objs);
             ])
  in
  Cmd.v
    (Cmd.info "rpcacc"
       ~doc:"small-call RPC throughput with the RPC-aware offload engine \
             (RPCAcc direction): record framing, header parse and dispatch \
             steering in the device, plus doorbell batching — software vs \
             device ablation per host profile. Virtual-time numbers; \
             byte-deterministic.")
    Term.(
      const run
      $ Arg.(value & flag
             & info [ "smoke" ] ~doc:"CI-sized run (384 calls).")
      $ Arg.(value & opt (some int) None
             & info [ "calls" ] ~docv:"N" ~doc:"Calls per (profile, mode).")
      $ Arg.(value & opt int 64
             & info [ "arg-bytes" ] ~docv:"B" ~doc:"Opaque argument size.")
      $ Arg.(value & opt int 32
             & info [ "window" ] ~docv:"N"
                 ~doc:"Pipeline window / doorbell batch size.")
      $ domains_arg $ json_arg)

(* --- fleet: heterogeneous multi-GPU superoptimizer sweep --- *)

let fleet_cmd =
  let run smoke max_len batch domains json_out =
    let max_len = match max_len with Some l -> l | None -> if smoke then 4 else 6 in
    let batch = match batch with Some b -> b | None -> if smoke then 256 else 2048 in
    let specs =
      if smoke then
        List.filter
          (fun s -> s.Apps.Superopt.spec_name <> "deep2")
          Apps.Superopt.demo_specs
      else Apps.Superopt.demo_specs
    in
    let mixes =
      [
        ("node", Gpusim.Device.gpu_node);
        ("a100x4", [ Gpusim.Device.a100; Gpusim.Device.a100;
                     Gpusim.Device.a100; Gpusim.Device.a100 ]);
        ("t4-p40", [ Gpusim.Device.t4; Gpusim.Device.t4;
                     Gpusim.Device.p40; Gpusim.Device.p40 ]);
      ]
    in
    let policies = [ Fleet.Cluster.Round_robin; Fleet.Cluster.Cost_aware ] in
    Printf.printf
      "heterogeneous GPU fleet: exhaustive superoptimizer search\n\
       %d specs, program length <= %d, %d candidates per launch, %d device \
       mixes x %d policies\n\n"
      (List.length specs) max_len batch (List.length mixes)
      (List.length policies);

    (* Compatibility routing on display: a fat binary holding only sm_52
       and sm_70 images. Under the cross-major rule the T4s (7.5) can run
       the sm_70 image; the A100 (8.0) and P40 (6.1) cannot run anything
       in it — and a fleet with no eligible device is a typed reject. *)
    Printf.printf "compat routing (fatbin with sm_52 + sm_70 images only):\n";
    let legacy =
      Apps.Superopt.fatbin ~archs:[ (5, 2); (7, 0) ] ()
    in
    List.iter
      (fun (mix_name, devices) ->
        let cluster = Fleet.Cluster.create devices in
        match Fleet.Cluster.load_module cluster legacy with
        | Ok m ->
            let devs =
              Fleet.Cluster.eligible m
              |> List.map (fun i ->
                     Printf.sprintf "%d (cc %d.%d)" i
                       (Fleet.Cluster.device cluster i).Gpusim.Device.compute_major
                       (Fleet.Cluster.device cluster i).Gpusim.Device.compute_minor)
              |> String.concat ", "
            in
            Printf.printf "  %-7s -> eligible devices: %s\n" mix_name devs
        | Error e ->
            Printf.printf "  %-7s -> typed reject: %s\n" mix_name
              (Fleet.Cluster.error_message e))
      mixes;
    print_newline ();

    (* Every (mix, policy) cell is an independent simulation; run the
       cells across domains and print in job order so stdout is
       byte-identical for any --domains. Wall-clock goes only to JSON. *)
    let cells =
      List.concat_map
        (fun mix -> List.map (fun p -> (mix, p)) policies)
        mixes
    in
    let results =
      Par.Pool.map ~domains
        (fun ((mix_name, devices), policy) ->
          let t0 = Unix.gettimeofday () in
          let cluster = Fleet.Cluster.create ~policy devices in
          let findings =
            List.map
              (fun spec ->
                match
                  Apps.Superopt.search ~cluster ~batch ~max_len spec
                with
                | Ok r -> (spec, r)
                | Error e ->
                    failwith
                      (Printf.sprintf "fleet %s/%s: %s" mix_name
                         (Fleet.Cluster.policy_name policy)
                         (Fleet.Cluster.error_message e)))
              specs
          in
          let makespan = Fleet.Cluster.barrier cluster in
          let wall = Unix.gettimeofday () -. t0 in
          ( mix_name, policy, findings, makespan,
            Fleet.Cluster.stats cluster,
            Fleet.Cluster.total_launches cluster,
            Fleet.Cluster.incompatible_launches cluster,
            Fleet.Cluster.digest cluster, wall ))
        cells
    in

    (* The search result is a property of the spec, not of the fleet: every
       cell must find the same programs. *)
    let reference_findings =
      match results with
      | (_, _, f, _, _, _, _, _, _) :: _ -> f
      | [] -> []
    in
    let parity =
      List.for_all
        (fun (_, _, f, _, _, _, _, _, _) ->
          List.for_all2
            (fun (_, a) (_, b) ->
              a.Apps.Superopt.program = b.Apps.Superopt.program)
            reference_findings f)
        results
    in
    Printf.printf "found programs (%s across all %d cells):\n"
      (if parity then "identical" else "NOT IDENTICAL")
      (List.length results);
    List.iter
      (fun (spec, (r : Apps.Superopt.search_result)) ->
        let found =
          match r.Apps.Superopt.program with
          | Some p ->
              Printf.sprintf "%s (len %d)"
                (Apps.Superopt.program_to_string p)
                (List.length p)
          | None -> Printf.sprintf "none of length <= %d" max_len
        in
        Printf.printf "  %-8s %-24s -> %s\n" spec.Apps.Superopt.spec_name
          (Apps.Superopt.program_to_string spec.Apps.Superopt.reference)
          found)
      reference_findings;
    print_newline ();

    let cell_objs =
      List.map
        (fun (mix_name, policy, findings, makespan, stats, launches, incompat,
              digest, wall) ->
          let candidates =
            List.fold_left
              (fun acc (_, r) -> acc + r.Apps.Superopt.candidates)
              0 findings
          in
          Printf.printf
            "%-7s %-4s  makespan %8.3f ms  %6d launches  %8d candidates  \
             incompat %d  digest %016Lx\n"
            mix_name
            (Fleet.Cluster.policy_name policy)
            (Simnet.Time.to_float_ms makespan)
            launches candidates incompat digest;
          List.iter
            (fun (s : Fleet.Cluster.device_stats) ->
              Printf.printf
                "        dev %d %-22s %6d launches  busy %8.3f ms  util %5.1f%%\n"
                s.Fleet.Cluster.ds_id
                s.Fleet.Cluster.ds_name s.Fleet.Cluster.ds_launches
                (Simnet.Time.to_float_ms s.Fleet.Cluster.ds_busy)
                (100. *. s.Fleet.Cluster.ds_utilization))
            stats;
          j_obj
            [
              ("mix", j_str mix_name);
              ("policy", j_str (Fleet.Cluster.policy_name policy));
              ("makespan_ms", j_float (Simnet.Time.to_float_ms makespan));
              ("launches", j_int launches);
              ("candidates", j_int candidates);
              ("incompatible", j_int incompat);
              ("digest", j_str (Printf.sprintf "%016Lx" digest));
              ( "devices",
                j_list
                  (List.map
                     (fun (s : Fleet.Cluster.device_stats) ->
                       j_obj
                         [
                           ("id", j_int s.Fleet.Cluster.ds_id);
                           ("name", j_str s.Fleet.Cluster.ds_name);
                           ("launches", j_int s.Fleet.Cluster.ds_launches);
                           ( "busy_ms",
                             j_float
                               (Simnet.Time.to_float_ms s.Fleet.Cluster.ds_busy) );
                           ( "utilization",
                             j_float s.Fleet.Cluster.ds_utilization );
                         ])
                     stats) );
              ("wall_s", j_float wall);
            ])
        results
    in
    print_newline ();
    let makespan_of mix policy =
      List.find_map
        (fun (m, p, _, makespan, _, _, _, _, _) ->
          if m = mix && p = policy then Some makespan else None)
        results
    in
    List.iter
      (fun (mix_name, _) ->
        match
          (makespan_of mix_name Fleet.Cluster.Round_robin,
           makespan_of mix_name Fleet.Cluster.Cost_aware)
        with
        | Some rr, Some cost when Simnet.Time.compare cost Simnet.Time.zero > 0
          ->
            Printf.printf
              "%-7s cost-aware vs round-robin makespan: %.2fx\n" mix_name
              (Int64.to_float rr /. Int64.to_float cost)
        | _ -> ())
      mixes;
    print_newline ();

    (* The same fleet discipline over real RPC: one Cricket server holding
       the whole node, a tenant-routed transport, a multi-device session
       steering launches with cudaSetDevice. The fatbin carries sm_70 +
       sm_80 images, so the P40 (6.1) is ineligible — its launch count and
       per-device RPC traffic must stay at the discovery-time baseline. *)
    Printf.printf "multi-device session over RPC (gpu_node, tenant \"uk0\"):\n";
    let engine = Simnet.Engine.create () in
    let clock = Cudasim.Context.engine_clock engine in
    let server =
      Cricket.Server.create ~devices:Gpusim.Device.gpu_node ~clock ()
    in
    let registry =
      Tenancy.Lease.create
        ~now:(fun () -> clock.Cudasim.Context.now ())
        ~ctx:(fun () -> Cricket.Server.context server)
        ()
    in
    Tenancy.Lease.install registry server;
    ignore
      (Tenancy.Lease.grant registry ~tenant:"uk0" Tenancy.Lease.default_caps);
    let client = Cricket.Local.connect_for server ~tenant:"uk0" in
    let session = Fleet.Session.connect client in
    let rpc_fatbin = Apps.Superopt.fatbin ~archs:[ (7, 0); (8, 0) ] () in
    (match Fleet.Session.load_module session rpc_fatbin with
    | Error e ->
        Printf.printf "  load_module: %s\n" (Fleet.Cluster.error_message e)
    | Ok m -> (
        Printf.printf "  eligible devices: %s\n"
          (String.concat ", "
             (List.map string_of_int (Fleet.Session.eligible m)));
        match Fleet.Session.get_function session m Apps.Superopt.kernel_name with
        | Error e ->
            Printf.printf "  get_function: %s\n"
              (Fleet.Cluster.error_message e)
        | Ok func ->
            let spec_table =
              Apps.Superopt.table_of_program [ 0; 6; 2; 7; 1; 5 ]
            in
            let rpc_batch = 64 in
            let bufs =
              List.map
                (fun dev ->
                  Cricket.Client.set_device client dev;
                  let d_table = Cricket.Client.malloc client 256 in
                  let d_flags = Cricket.Client.malloc client rpc_batch in
                  Cricket.Client.memcpy_h2d client ~dst:d_table spec_table;
                  (dev, (d_table, d_flags)))
                (Fleet.Session.eligible m)
            in
            let matches = ref 0 in
            for len = 1 to 3 do
              let total = int_of_float (8. ** float_of_int len) in
              let base = ref 0 in
              while !base < total do
                let n = min rpc_batch (total - !base) in
                let b = !base in
                (match
                   Fleet.Session.launch session func
                     ~grid:{ Cricket.Client.x = (n + 127) / 128; y = 1; z = 1 }
                     ~block:{ Cricket.Client.x = 128; y = 1; z = 1 }
                     (fun dev ->
                       let d_table, d_flags = List.assoc dev bufs in
                       [|
                         Gpusim.Kernels.Ptr (Int64.to_int d_table);
                         Gpusim.Kernels.Ptr (Int64.to_int d_flags);
                         Gpusim.Kernels.I64 (Int64.of_int b);
                         Gpusim.Kernels.I32 (Int32.of_int n);
                         Gpusim.Kernels.I32 (Int32.of_int len);
                       |])
                 with
                | Error e ->
                    failwith
                      (Printf.sprintf "session launch: %s"
                         (Fleet.Cluster.error_message e))
                | Ok dev ->
                    let _, d_flags = List.assoc dev bufs in
                    let flags =
                      Cricket.Client.memcpy_d2h client ~src:d_flags ~len:n
                    in
                    Bytes.iter
                      (fun c -> if c = '\001' then incr matches)
                      flags);
                base := !base + rpc_batch
              done
            done;
            Fleet.Session.synchronize session;
            Printf.printf
              "  searched lengths 1-3 for a depth-6 spec: %d matches \
               (expected 0)\n"
              !matches;
            Printf.printf "  session launches per device:%s\n"
              (String.concat ""
                 (List.map
                    (fun (d, n) -> Printf.sprintf " %d:%d" d n)
                    (Fleet.Session.launches session)));
            Printf.printf "  server RPC calls per device:%s\n"
              (String.concat ""
                 (List.map
                    (fun (d, n) -> Printf.sprintf " %d:%d" d n)
                    (Cricket.Server.device_calls server)));
            List.iter
              (fun (dev, (d_table, d_flags)) ->
                Cricket.Client.set_device client dev;
                Cricket.Client.free client d_table;
                Cricket.Client.free client d_flags)
              bufs;
            (match Tenancy.Lease.find registry "uk0" with
            | Some lease ->
                Printf.printf
                  "  tenant calls: %s  lease mem in use after frees: %d B\n"
                  (String.concat ", "
                     (List.map
                        (fun (t, n) -> Printf.sprintf "%s=%d" t n)
                        (Cricket.Server.tenant_calls server)))
                  lease.Tenancy.Lease.mem_used
            | None -> ());
            (match Cricket.Client.set_device client (-1) with
            | () -> Printf.printf "  set_device(-1): unexpectedly succeeded\n"
            | exception Cudasim.Error.Cuda_error e ->
                Printf.printf "  set_device(-1): typed CUDA error (%s)\n"
                  (Cudasim.Error.to_string e))));
    (match json_out with
    | None -> ()
    | Some path ->
        write_json path
          (j_obj
             [
               ("bench", j_str "fleet");
               ("max_len", j_int max_len);
               ("batch", j_int batch);
               ("specs", j_int (List.length specs));
               ("parity", if parity then "true" else "false");
               ("cells", j_list cell_objs);
             ]))
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"heterogeneous multi-GPU fleet running the exhaustive \
             shortest-program superoptimizer: device-mix x scheduler-policy \
             sweep with compatibility routing (cross-major SASS images are \
             never executed), per-device utilization, and a multi-device \
             RPC session with tenancy accounting. Virtual-time numbers; \
             byte-deterministic.")
    Term.(
      const run
      $ Arg.(value & flag
             & info [ "smoke" ] ~doc:"CI-sized run (length <= 4).")
      $ Arg.(value & opt (some int) None
             & info [ "max-len" ] ~docv:"L"
                 ~doc:"Longest program length to search.")
      $ Arg.(value & opt (some int) None
             & info [ "batch" ] ~docv:"N" ~doc:"Candidates per launch.")
      $ domains_arg $ json_arg)

let main =
  Cmd.group
    (Cmd.info "benchctl" ~doc:"run individual paper experiments")
    [ table1_cmd; matrixmul_cmd; solver_cmd; histogram_cmd; micro_cmd;
      bandwidth_cmd; pipeline_cmd; multitenant_cmd; tenants_cmd; trace_cmd;
      faults_cmd; offloads_cmd; latency_cmd; migrate_cmd; rpcacc_cmd;
      fleet_cmd ]

let () = exit (Cmd.eval main)
