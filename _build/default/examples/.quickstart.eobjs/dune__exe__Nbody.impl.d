examples/nbody.ml: Apps Array Cricket Cubin Cudasim Float Gpusim Int32 Int64 List Printf Simnet Sys Unikernel
