examples/checkpoint_restart.mli:
