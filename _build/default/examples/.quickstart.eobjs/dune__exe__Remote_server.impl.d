examples/remote_server.ml: Bytes Cricket Cubin Cudasim Float Gpusim Int32 Int64 Oncrpc Printf Rpcl Simnet
