examples/matrix_mul.ml: Apps Array Format List Printf Sys Unikernel
