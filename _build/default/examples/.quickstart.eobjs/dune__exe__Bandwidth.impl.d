examples/bandwidth.ml: Apps Array List Printf Simnet Sys Unikernel
