examples/histogram.mli:
