examples/linear_solver.mli:
