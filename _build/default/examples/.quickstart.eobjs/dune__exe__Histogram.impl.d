examples/histogram.ml: Apps Array Format List Printf Simnet Sys Unikernel
