examples/conjugate_gradient.ml: Apps Array Cricket Cudasim Float Format Gpusim Int32 Int64 Printf Simnet Sys
