examples/quickstart.ml: Bytes Cricket Cubin Cudasim Float Format Gpusim Int32 Int64 Printf Simnet
