examples/migration.mli:
