examples/quickstart.mli:
