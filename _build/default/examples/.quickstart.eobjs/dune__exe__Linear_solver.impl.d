examples/linear_solver.ml: Apps Array Format List Printf Sys Unikernel
