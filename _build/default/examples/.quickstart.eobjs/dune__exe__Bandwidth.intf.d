examples/bandwidth.mli:
