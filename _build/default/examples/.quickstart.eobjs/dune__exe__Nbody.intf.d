examples/nbody.mli:
