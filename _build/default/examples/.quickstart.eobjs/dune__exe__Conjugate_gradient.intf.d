examples/conjugate_gradient.mli:
