examples/remote_server.mli:
