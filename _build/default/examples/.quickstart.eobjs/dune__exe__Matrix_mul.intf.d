examples/matrix_mul.mli:
