examples/checkpoint_restart.ml: Bytes Cricket Cubin Cudasim Filename Gpusim Int32 Int64 Printf Simnet Sys
