(* Quickstart: the minimal Cricket GPU application.

   Starts an in-process Cricket server fronting the simulated GPU node,
   connects a client, allocates device memory, uploads data, launches a
   kernel loaded from a (compressed) cubin module, and reads the result
   back — the full pipeline of Figure 3 in the paper.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. a Cricket server on the GPU node (virtual clock drives GPU time) *)
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  (* 2. a client; Local.connect wires it over an in-process RPC transport.
     (See remote_server.ml for real TCP sockets.) *)
  let client = Cricket.Local.connect server in

  Printf.printf "GPUs visible through Cricket: %d\n"
    (Cricket.Client.get_device_count client);
  let props = Cricket.Client.get_device_properties client 0 in
  Printf.printf "Device 0: %s (%d SMs)\n" props.Cricket.Client.name
    props.Cricket.Client.multi_processor_count;

  (* 3. device memory, with lifetime tracking (no use-after-free) *)
  let n = 1 lsl 16 in
  Cricket.Lifetime.with_buffer client (4 * n) (fun d_x ->
      Cricket.Lifetime.with_buffer client (4 * n) (fun d_y ->
          let floats v =
            let b = Bytes.create (4 * n) in
            for i = 0 to n - 1 do
              Bytes.set_int32_le b (4 * i) (Int32.bits_of_float (v i))
            done;
            b
          in
          Cricket.Lifetime.upload d_x (floats (fun i -> Float.of_int i));
          Cricket.Lifetime.upload d_y (floats (fun _ -> 1.0));

          (* 4. load a kernel module: built client-side as a compressed
             cubin, decompressed and indexed by the server (§3.3) *)
          let image = Cubin.Image.of_registry [ Gpusim.Kernels.saxpy_name ] in
          let modul =
            Cricket.Client.module_load client
              (Cubin.Image.build ~compress:true image)
          in
          let saxpy =
            Cricket.Client.get_function client ~modul
              ~name:Gpusim.Kernels.saxpy_name
          in

          (* 5. launch: y <- 2x + y *)
          Cricket.Client.launch client saxpy
            ~grid:{ Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 }
            ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
            [|
              Gpusim.Kernels.F32 2.0;
              Gpusim.Kernels.Ptr (Int64.to_int (Cricket.Lifetime.ptr d_x));
              Gpusim.Kernels.Ptr (Int64.to_int (Cricket.Lifetime.ptr d_y));
              Gpusim.Kernels.I32 (Int32.of_int n);
            |];
          Cricket.Client.device_synchronize client;

          (* 6. read back and verify *)
          let result = Cricket.Lifetime.download d_y in
          let ok = ref true in
          for i = 0 to n - 1 do
            let v = Int32.float_of_bits (Bytes.get_int32_le result (4 * i)) in
            if v <> (2.0 *. Float.of_int i) +. 1.0 then ok := false
          done;
          Printf.printf "saxpy over %d elements: %s\n" n
            (if !ok then "verified" else "WRONG");
          Cricket.Client.module_unload client modul));

  Printf.printf "API calls: %d, sent %d bytes, received %d bytes\n"
    (Cricket.Client.api_calls client)
    (Cricket.Client.bytes_to_server client)
    (Cricket.Client.bytes_from_server client);
  Printf.printf "Virtual time elapsed on the simulated cluster: %s\n"
    (Format.asprintf "%a" Simnet.Time.pp (Simnet.Engine.now engine))
