(* Checkpoint / restart (§3.3, §5): snapshot the Cricket server's entire
   GPU state mid-application, destroy the state, restore it, and show the
   application continues to a correct result — the mechanism that lets a
   cluster operator reorganize which unikernels use which GPU at runtime.

     dune exec examples/checkpoint_restart.exe *)

let () =
  let dir = Filename.get_temp_dir_name () in
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~checkpoint_dir:dir
      ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let client = Cricket.Local.connect server in

  (* a running "application": accumulating sums on the GPU *)
  let n = 4096 in
  let image =
    Cubin.Image.of_registry
      [ Gpusim.Kernels.saxpy_name; Gpusim.Kernels.reduce_sum_name ]
  in
  let modul = Cricket.Client.module_load client (Cubin.Image.build image) in
  let saxpy =
    Cricket.Client.get_function client ~modul ~name:Gpusim.Kernels.saxpy_name
  in
  let reduce =
    Cricket.Client.get_function client ~modul
      ~name:Gpusim.Kernels.reduce_sum_name
  in
  let d_x = Cricket.Client.malloc client (4 * n) in
  let d_acc = Cricket.Client.malloc client (4 * n) in
  let d_out = Cricket.Client.malloc client 4 in
  let ones = Bytes.create (4 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le ones (4 * i) (Int32.bits_of_float 1.0)
  done;
  Cricket.Client.memcpy_h2d client ~dst:d_x ones;
  Cricket.Client.memset client ~ptr:d_acc ~value:0 ~len:(4 * n);
  let step () =
    Cricket.Client.launch client saxpy
      ~grid:{ Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 }
      ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.F32 1.0;
        Gpusim.Kernels.Ptr (Int64.to_int d_x);
        Gpusim.Kernels.Ptr (Int64.to_int d_acc);
        Gpusim.Kernels.I32 (Int32.of_int n);
      |]
  in
  let current_sum () =
    Cricket.Client.launch client reduce
      ~grid:{ Cricket.Client.x = 1; y = 1; z = 1 }
      ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.Ptr (Int64.to_int d_acc);
        Gpusim.Kernels.Ptr (Int64.to_int d_out);
        Gpusim.Kernels.I32 (Int32.of_int n);
      |];
    Cricket.Client.device_synchronize client;
    let b = Cricket.Client.memcpy_d2h client ~src:d_out ~len:4 in
    Int32.float_of_bits (Bytes.get_int32_le b 0)
  in

  for _ = 1 to 10 do step () done;
  Printf.printf "after 10 steps: sum = %.0f (expected %d)\n" (current_sum ())
    (10 * n);

  print_endline "checkpointing server-side GPU state...";
  Cricket.Client.checkpoint client "example.ckpt";

  (* catastrophe: the accumulator is wiped *)
  Cricket.Client.memset client ~ptr:d_acc ~value:0 ~len:(4 * n);
  Printf.printf "after wipe: sum = %.0f\n" (current_sum ());

  print_endline "restoring...";
  Cricket.Client.restore client "example.ckpt";
  Printf.printf "after restore: sum = %.0f (state recovered)\n" (current_sum ());

  (* and the application continues where it left off *)
  for _ = 1 to 10 do step () done;
  Printf.printf "after 10 more steps: sum = %.0f (expected %d)\n"
    (current_sum ()) (20 * n);
  Sys.remove (Filename.concat dir "example.ckpt")
