(* The matrixMul proxy application (Fig. 5a) across all five evaluated
   host configurations, GNU-time style end-to-end measurement.

     dune exec examples/matrix_mul.exe              # small default workload
     dune exec examples/matrix_mul.exe -- 10000     # custom iteration count *)

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1_000
  in
  let params = { Apps.Matrix_mul.default with Apps.Matrix_mul.iterations } in
  Printf.printf
    "matrixMul: C(%dx%d) = A(%dx%d) x B(%dx%d), %d iterations\n\n"
    params.Apps.Matrix_mul.ha params.Apps.Matrix_mul.wb
    params.Apps.Matrix_mul.ha params.Apps.Matrix_mul.wa
    params.Apps.Matrix_mul.wa params.Apps.Matrix_mul.wb iterations;
  (* verify the numerics once on a small functional run *)
  ignore
    (Unikernel.Runner.run ~functional:true Unikernel.Config.rust_native
       (Apps.Matrix_mul.run ~verify:true
          { params with Apps.Matrix_mul.iterations = 2 }));
  print_endline "numerics verified against the CPU reference\n";
  List.iter
    (fun cfg ->
      let m =
        Unikernel.Runner.run ~functional:false cfg
          (Apps.Matrix_mul.run ~verify:false params)
      in
      Format.printf "%a@." Unikernel.Runner.pp_measurement m)
    Unikernel.Config.all
