(* The histogram proxy application (Fig. 5c): 256-bin histogram of a
   64 MiB pseudo-random array, showing the C-vs-Rust initialization gap
   the paper reports (the C samples use a slower rand()).

     dune exec examples/histogram.exe            # 500 iterations
     dune exec examples/histogram.exe -- 5000 *)

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let params = { Apps.Histogram.default with Apps.Histogram.iterations } in
  Printf.printf "histogram: %d MiB input, %d iterations\n\n"
    (params.Apps.Histogram.data_bytes lsr 20)
    iterations;
  ignore
    (Unikernel.Runner.run ~functional:true Unikernel.Config.rust_native
       (Apps.Histogram.run ~verify:true
          { params with Apps.Histogram.iterations = 2 }));
  print_endline "histogram verified against the CPU reference\n";
  let rows =
    List.map
      (fun cfg ->
        let m =
          Unikernel.Runner.run ~functional:false cfg
            (Apps.Histogram.run ~verify:false params)
        in
        Format.printf "%a@." Unikernel.Runner.pp_measurement m;
        (cfg, m))
      Unikernel.Config.all
  in
  match
    ( List.find_opt (fun (c, _) -> c.Unikernel.Config.name = "C") rows,
      List.find_opt (fun (c, _) -> c.Unikernel.Config.name = "Rust") rows )
  with
  | Some (_, c), Some (_, rust) ->
      let tc = Simnet.Time.to_float_s c.Unikernel.Runner.elapsed in
      let tr = Simnet.Time.to_float_s rust.Unikernel.Runner.elapsed in
      Printf.printf
        "\nRust is %.1f%% faster than C (paper: 37.6%%; the gap grows with \
         the init share)\n"
        (100.0 *. (tc -. tr) /. tc)
  | _ -> ()
