(* N-body gravity simulation through Cricket — a compute-bound workload at
   the opposite end of the spectrum from the paper's I/O-intensive proxy
   apps. With long-running O(n²) kernels, the unikernel overhead almost
   vanishes, which is exactly the paper's conclusion: "our approach is
   best suited to GPU applications that have long-running, high-workload
   GPU kernels".

     dune exec examples/nbody.exe             # 16384 bodies, 25 steps
     dune exec examples/nbody.exe -- 2048 50  # small: back to call-bound *)

let body_floats n =
  (* deterministic plummer-ish cloud; (x,y,z,mass) *)
  let state = ref 424242 in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3fffffff in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3fffffff in
    state := x;
    (Float.of_int (x land 0xfffff) /. Float.of_int 0xfffff) -. 0.5
  in
  Array.init (4 * n) (fun i ->
      match i mod 4 with 3 -> 1.0 /. Float.of_int n | _ -> next ())

let f32_bytes = Apps.Workload.f32_bytes
let f32_array = Apps.Workload.f32_array

let momentum pos_bytes vel_bytes n =
  let pos = f32_array pos_bytes and vel = f32_array vel_bytes in
  let px = ref 0.0 and py = ref 0.0 and pz = ref 0.0 in
  for i = 0 to n - 1 do
    let m = pos.((4 * i) + 3) in
    px := !px +. (m *. vel.(4 * i));
    py := !py +. (m *. vel.((4 * i) + 1));
    pz := !pz +. (m *. vel.((4 * i) + 2))
  done;
  Float.sqrt ((!px *. !px) +. (!py *. !py) +. (!pz *. !pz))

let run_config cfg n steps =
  Unikernel.Runner.run ~functional:false cfg (fun env ->
      let client = env.Unikernel.Runner.client in
      let d_pos = Cricket.Client.malloc client (16 * n) in
      let d_vel = Cricket.Client.malloc client (16 * n) in
      Cricket.Client.memcpy_h2d client ~dst:d_pos
        (f32_bytes (body_floats n));
      Cricket.Client.memset client ~ptr:d_vel ~value:0 ~len:(16 * n);
      let modul = Apps.Workload.load_standard_module client in
      let image = Cubin.Image.of_registry [ Gpusim.Kernels.nbody_name ] in
      let m2 = Cricket.Client.module_load client (Cubin.Image.build image) in
      ignore modul;
      let kernel =
        Cricket.Client.get_function client ~modul:m2
          ~name:Gpusim.Kernels.nbody_name
      in
      for _ = 1 to steps do
        Cricket.Client.launch client kernel
          ~grid:{ Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 }
          ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
          [|
            Gpusim.Kernels.Ptr (Int64.to_int d_pos);
            Gpusim.Kernels.Ptr (Int64.to_int d_vel);
            Gpusim.Kernels.F32 0.001;
            Gpusim.Kernels.I32 (Int32.of_int n);
          |]
      done;
      Cricket.Client.device_synchronize client)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 16384 in
  let steps = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 25 in
  Printf.printf "n-body: %d bodies, %d steps (O(n^2) kernels)\n\n" n steps;

  (* physics sanity check on a small functional run: total momentum of an
     isolated system starting at rest stays ~0 *)
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let client = Cricket.Local.connect server in
  let small = 256 in
  let d_pos = Cricket.Client.malloc client (16 * small) in
  let d_vel = Cricket.Client.malloc client (16 * small) in
  Cricket.Client.memcpy_h2d client ~dst:d_pos (f32_bytes (body_floats small));
  Cricket.Client.memset client ~ptr:d_vel ~value:0 ~len:(16 * small);
  let image = Cubin.Image.of_registry [ Gpusim.Kernels.nbody_name ] in
  let modul = Cricket.Client.module_load client (Cubin.Image.build image) in
  let kernel =
    Cricket.Client.get_function client ~modul ~name:Gpusim.Kernels.nbody_name
  in
  for _ = 1 to 5 do
    Cricket.Client.launch client kernel
      ~grid:{ Cricket.Client.x = 1; y = 1; z = 1 }
      ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.Ptr (Int64.to_int d_pos);
        Gpusim.Kernels.Ptr (Int64.to_int d_vel);
        Gpusim.Kernels.F32 0.001;
        Gpusim.Kernels.I32 (Int32.of_int small);
      |]
  done;
  Cricket.Client.device_synchronize client;
  let p =
    momentum
      (Cricket.Client.memcpy_d2h client ~src:d_pos ~len:(16 * small))
      (Cricket.Client.memcpy_d2h client ~src:d_vel ~len:(16 * small))
      small
  in
  Printf.printf "momentum drift after 5 steps: |p| = %.2e %s\n\n" p
    (if p < 1e-3 then "(conserved)" else "(UNEXPECTED)");

  (* compute-bound: virtualization overhead nearly disappears *)
  Printf.printf "%-9s %12s %14s\n" "config" "time" "vs native";
  let rust =
    Simnet.Time.to_float_s
      (run_config Unikernel.Config.rust_native n steps).Unikernel.Runner.elapsed
  in
  List.iter
    (fun cfg ->
      let t =
        Simnet.Time.to_float_s
          (run_config cfg n steps).Unikernel.Runner.elapsed
      in
      Printf.printf "%-9s %11.3fs %13.2fx\n" cfg.Unikernel.Config.name t
        (t /. rust))
    Unikernel.Config.all
