(* The cuSolverDn_LinearSolver proxy application (Fig. 5b): LU-factorize
   and solve a dense 900x900 system on the remote GPU through Cricket,
   checking the residual.

     dune exec examples/linear_solver.exe            # 5 iterations, n=900
     dune exec examples/linear_solver.exe -- 200 300 # 200 iterations, n=300 *)

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 900 in
  let params = { Apps.Linear_solver.n; iterations } in
  Printf.printf "cuSolverDn_LinearSolver: LU %dx%d, %d iterations\n\n" n n
    iterations;
  (* one functional iteration verifies the residual *)
  ignore
    (Unikernel.Runner.run ~functional:true Unikernel.Config.rust_native
       (Apps.Linear_solver.run ~verify:true
          { params with Apps.Linear_solver.iterations = 1 }));
  Printf.printf "residual check passed (n = %d)\n\n" n;
  List.iter
    (fun cfg ->
      let m =
        Unikernel.Runner.run ~functional:false cfg
          (Apps.Linear_solver.run ~verify:false params)
      in
      Format.printf "%a@." Unikernel.Runner.pp_measurement m)
    Unikernel.Config.all
