(* bandwidthTest port (Fig. 7): host<->device transfer bandwidth through
   the Cricket RPC-argument path for each configuration, plus the §4.2
   offload ablation.

     dune exec examples/bandwidth.exe          # 128 MiB per direction
     dune exec examples/bandwidth.exe -- 512   # paper size *)

let () =
  let mib =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 128
  in
  let total_bytes = mib lsl 20 in
  Printf.printf "bandwidthTest: %d MiB per direction, RPC-argument path\n\n" mib;
  Printf.printf "%-9s %14s %14s\n" "config" "H2D MiB/s" "D2H MiB/s";
  List.iter
    (fun cfg ->
      let h2d = ref 0.0 and d2h = ref 0.0 in
      let (_ : Unikernel.Runner.measurement) =
        Unikernel.Runner.run ~functional:false cfg (fun env ->
            let r1 =
              Apps.Bandwidth.measure ~total_bytes Apps.Bandwidth.Host_to_device
                env
            in
            let r2 =
              Apps.Bandwidth.measure ~total_bytes Apps.Bandwidth.Device_to_host
                env
            in
            h2d := r1.Apps.Bandwidth.mib_per_s;
            d2h := r2.Apps.Bandwidth.mib_per_s)
      in
      Printf.printf "%-9s %14.1f %14.1f\n%!" cfg.Unikernel.Config.name !h2d !d2h)
    Unikernel.Config.all;
  (* the paper's ablation: VM with TSO/tx-csum/SG turned off *)
  let vm = Unikernel.Config.linux_vm in
  let crippled =
    { vm with
      Unikernel.Config.name = "VM-nooff";
      profile =
        Simnet.Hostprofile.with_offloads vm.Unikernel.Config.profile
          (Simnet.Offload.disable_bulk
             vm.Unikernel.Config.profile.Simnet.Hostprofile.offloads) }
  in
  let h2d = ref 0.0 in
  let (_ : Unikernel.Runner.measurement) =
    Unikernel.Runner.run ~functional:false crippled (fun env ->
        let r =
          Apps.Bandwidth.measure ~total_bytes Apps.Bandwidth.Host_to_device env
        in
        h2d := r.Apps.Bandwidth.mib_per_s)
  in
  Printf.printf "%-9s %14.1f %14s   (paper: ~923.9 MiB/s with offloads off)\n"
    crippled.Unikernel.Config.name !h2d "-"
