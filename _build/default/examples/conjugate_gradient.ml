(* Conjugate gradient on the remote GPU, composed entirely from cuBLAS
   calls forwarded through Cricket (sgemv, sdot, snrm2 plus the saxpy
   kernel) — an iterative solver whose per-iteration profile (a handful of
   small RPCs around one mid-size kernel) sits between the paper's
   call-bound and transfer-bound proxy apps.

   The cuBLAS level-1/2 procedures were added to the RPCL specification
   after the initial protocol: per the paper's RPC-Lib design, that made
   them callable with no transport or dispatch changes.

     dune exec examples/conjugate_gradient.exe          # n = 512
     dune exec examples/conjugate_gradient.exe -- 1024 *)

module C = Cricket.Client

let f32_bytes = Apps.Workload.f32_bytes

(* symmetric positive definite system: A = L·Lᵀ + n·I, column-major *)
let spd_system n =
  let state = ref 31337 in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3fffffff in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3fffffff in
    state := x;
    (Float.of_int (x land 0xffff) /. 65536.0) -. 0.5
  in
  let l = Array.init (n * n) (fun _ -> next () /. Float.sqrt (Float.of_int n)) in
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (l.((k * n) + i) *. l.((k * n) + j))
      done;
      a.((j * n) + i) <- !acc
    done;
    a.((i * n) + i) <- a.((i * n) + i) +. 0.5
  done;
  let b = Array.init n (fun i -> Float.of_int ((i mod 7) + 1)) in
  (a, b)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 512 in
  Printf.printf "conjugate gradient: %dx%d SPD system over Cricket cuBLAS\n" n n;
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let client = Cricket.Local.connect server in
  let blas = C.cublas_create client in
  let a, b = spd_system n in
  let vec = 4 * n in
  let d_a = C.malloc client (4 * n * n) in
  let d_b = C.malloc client vec in
  let d_x = C.malloc client vec in
  let d_r = C.malloc client vec in
  let d_p = C.malloc client vec in
  let d_ap = C.malloc client vec in
  C.memcpy_h2d client ~dst:d_a (f32_bytes a);
  C.memcpy_h2d client ~dst:d_b (f32_bytes b);
  C.memset client ~ptr:d_x ~value:0 ~len:vec;
  (* r = b, p = b *)
  C.memcpy_d2d client ~dst:d_r ~src:d_b ~len:vec;
  C.memcpy_d2d client ~dst:d_p ~src:d_b ~len:vec;
  let modul = Apps.Workload.load_standard_module client in
  let saxpy = C.get_function client ~modul ~name:Gpusim.Kernels.saxpy_name in
  let axpy alpha x y =
    (* y <- alpha*x + y via the saxpy kernel *)
    C.launch client saxpy
      ~grid:{ C.x = (n + 255) / 256; y = 1; z = 1 }
      ~block:{ C.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.F32 alpha;
        Gpusim.Kernels.Ptr (Int64.to_int x);
        Gpusim.Kernels.Ptr (Int64.to_int y);
        Gpusim.Kernels.I32 (Int32.of_int n);
      |]
  in
  let rs_old = ref (C.cublas_sdot client ~handle:blas ~n ~x:d_r ~incx:1 ~y:d_r ~incy:1) in
  let iterations = ref 0 in
  let budget = 4 * n in
  while Float.sqrt !rs_old > 1e-4 && !iterations < budget do
    incr iterations;
    (* ap = A p *)
    C.cublas_sgemv client ~handle:blas ~m:n ~n ~alpha:1.0 ~a:d_a ~lda:n
      ~x:d_p ~incx:1 ~beta:0.0 ~y:d_ap ~incy:1;
    let pap =
      C.cublas_sdot client ~handle:blas ~n ~x:d_p ~incx:1 ~y:d_ap ~incy:1
    in
    let alpha = !rs_old /. pap in
    axpy alpha d_p d_x;
    axpy (-.alpha) d_ap d_r;
    C.device_synchronize client;
    let rs_new =
      C.cublas_sdot client ~handle:blas ~n ~x:d_r ~incx:1 ~y:d_r ~incy:1
    in
    (* p = r + (rs_new/rs_old) p  — via scal + axpy *)
    C.cublas_sscal client ~handle:blas ~n ~alpha:(rs_new /. !rs_old) ~x:d_p
      ~incx:1;
    axpy 1.0 d_r d_p;
    C.device_synchronize client;
    rs_old := rs_new
  done;
  Printf.printf "converged in %d iterations, residual %.2e\n" !iterations
    (Float.sqrt !rs_old);
  (* verify: residual of returned x against the host-side system *)
  let x = Apps.Workload.f32_array (C.memcpy_d2h client ~src:d_x ~len:vec) in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (a.((j * n) + i) *. x.(j))
    done;
    worst := Float.max !worst (Float.abs (!acc -. b.(i)))
  done;
  Printf.printf "host-checked residual: |Ax-b|_inf = %.2e %s\n" !worst
    (if !worst < 1e-2 then "(verified)" else "(TOO LARGE)");
  Printf.printf "API calls: %d (%.1f per CG iteration)\n"
    (C.api_calls client)
    (Float.of_int (C.api_calls client) /. Float.of_int (max 1 !iterations));
  Printf.printf "virtual time: %s\n"
    (Format.asprintf "%a" Simnet.Time.pp (Simnet.Engine.now engine))
