(* Remote execution over real TCP sockets: a Cricket server thread on one
   end of the loopback, a client that discovers the service through the
   portmapper and runs GPU work across the wire — real ONC RPC bytes,
   record marking and all.

     dune exec examples/remote_server.exe *)

let () =
  (* --- "GPU node": RPC server + portmapper on a real socket --- *)
  let engine = Simnet.Engine.create () in
  let server =
    Cricket.Server.create ~clock:(Cudasim.Context.engine_clock engine) ()
  in
  let rpc = Cricket.Server.rpc_server server in
  let pm = Oncrpc.Portmap.create () in
  Oncrpc.Portmap.attach pm rpc;
  let tcp = Oncrpc.Server.serve_tcp rpc ~port:0 () in
  let port = Oncrpc.Server.tcp_port tcp in
  ignore
    (Oncrpc.Portmap.set pm
       { Oncrpc.Portmap.prog = Rpcl.Specs.cricket_program_number;
         vers = Rpcl.Specs.cricket_version_number;
         prot = Oncrpc.Portmap.prot_tcp; port });
  Printf.printf "server: Cricket + portmap listening on 127.0.0.1:%d\n%!" port;

  (* --- "application node": look the program up, then talk CUDA --- *)
  let pm_transport = Oncrpc.Transport.tcp_connect ~host:"127.0.0.1" ~port in
  let pm_client =
    Oncrpc.Client.create ~transport:pm_transport ~prog:Oncrpc.Portmap.program
      ~vers:Oncrpc.Portmap.version ()
  in
  let discovered =
    Oncrpc.Portmap.remote_getport pm_client
      ~prog:Rpcl.Specs.cricket_program_number
      ~vers:Rpcl.Specs.cricket_version_number ~prot:Oncrpc.Portmap.prot_tcp
  in
  Printf.printf "client: portmapper says Cricket is on port %d\n%!" discovered;
  Oncrpc.Client.close pm_client;

  let transport =
    Oncrpc.Transport.tcp_connect ~host:"127.0.0.1" ~port:discovered
  in
  let client = Cricket.Client.create ~transport () in
  Printf.printf "client: %d GPUs on the remote node\n%!"
    (Cricket.Client.get_device_count client);

  (* run a real workload across the wire: 4 MiB roundtrip + a kernel *)
  let n = 1 lsl 20 in
  let d = Cricket.Client.malloc client (4 * n) in
  let data = Bytes.create (4 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le data (4 * i) (Int32.bits_of_float (Float.of_int (i land 0xff)))
  done;
  Cricket.Client.memcpy_h2d client ~dst:d data;
  let image = Cubin.Image.of_registry [ Gpusim.Kernels.reduce_sum_name ] in
  let modul = Cricket.Client.module_load client (Cubin.Image.build image) in
  let reduce =
    Cricket.Client.get_function client ~modul
      ~name:Gpusim.Kernels.reduce_sum_name
  in
  let d_out = Cricket.Client.malloc client 4 in
  Cricket.Client.launch client reduce
    ~grid:{ Cricket.Client.x = 1; y = 1; z = 1 }
    ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
    [|
      Gpusim.Kernels.Ptr (Int64.to_int d);
      Gpusim.Kernels.Ptr (Int64.to_int d_out);
      Gpusim.Kernels.I32 (Int32.of_int n);
    |];
  Cricket.Client.device_synchronize client;
  let out = Cricket.Client.memcpy_d2h client ~src:d_out ~len:4 in
  let sum = Int32.float_of_bits (Bytes.get_int32_le out 0) in
  let expected = Float.of_int (n / 256 * (255 * 256 / 2)) in
  Printf.printf "client: reduce over 1M floats = %.0f (expected %.0f) — %s\n"
    sum expected
    (if Float.abs (sum -. expected) < 1.0 then "verified" else "WRONG");
  Printf.printf "client: %d API calls over TCP, %d bytes up, %d bytes down\n"
    (Cricket.Client.api_calls client)
    (Cricket.Client.bytes_to_server client)
    (Cricket.Client.bytes_from_server client);
  Cricket.Client.close client;
  Oncrpc.Server.shutdown_tcp tcp
