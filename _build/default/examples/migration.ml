(* GPU-state migration between Cricket servers (§5: "runtime
   reorganization of tasks through checkpoint/restart ... large-scale
   deployments of unikernels in heterogeneous clusters").

   An application runs against GPU node A; the operator checkpoints A,
   moves the state file to GPU node B, restores there, and the application
   reconnects to B and continues — device pointers and loaded kernel
   modules survive because the checkpoint captures the full allocator and
   module state.

     dune exec examples/migration.exe *)

let step client saxpy d_x d_acc n =
  Cricket.Client.launch client saxpy
    ~grid:{ Cricket.Client.x = (n + 255) / 256; y = 1; z = 1 }
    ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
    [|
      Gpusim.Kernels.F32 1.0;
      Gpusim.Kernels.Ptr (Int64.to_int d_x);
      Gpusim.Kernels.Ptr (Int64.to_int d_acc);
      Gpusim.Kernels.I32 (Int32.of_int n);
    |]

let sum_of client reduce d_acc d_out n =
  Cricket.Client.launch client reduce
    ~grid:{ Cricket.Client.x = 1; y = 1; z = 1 }
    ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
    [|
      Gpusim.Kernels.Ptr (Int64.to_int d_acc);
      Gpusim.Kernels.Ptr (Int64.to_int d_out);
      Gpusim.Kernels.I32 (Int32.of_int n);
    |];
  Cricket.Client.device_synchronize client;
  let b = Cricket.Client.memcpy_d2h client ~src:d_out ~len:4 in
  Int32.float_of_bits (Bytes.get_int32_le b 0)

let () =
  let dir = Filename.get_temp_dir_name () in
  let n = 4096 in
  let image =
    Cubin.Image.of_registry
      [ Gpusim.Kernels.saxpy_name; Gpusim.Kernels.reduce_sum_name ]
  in
  let module_bytes = Cubin.Image.build image in

  (* --- GPU node A --- *)
  let engine_a = Simnet.Engine.create () in
  let node_a =
    Cricket.Server.create ~checkpoint_dir:dir
      ~clock:(Cudasim.Context.engine_clock engine_a) ()
  in
  let client_a = Cricket.Local.connect node_a in
  let modul = Cricket.Client.module_load client_a module_bytes in
  let saxpy =
    Cricket.Client.get_function client_a ~modul ~name:Gpusim.Kernels.saxpy_name
  in
  let reduce =
    Cricket.Client.get_function client_a ~modul
      ~name:Gpusim.Kernels.reduce_sum_name
  in
  let d_x = Cricket.Client.malloc client_a (4 * n) in
  let d_acc = Cricket.Client.malloc client_a (4 * n) in
  let d_out = Cricket.Client.malloc client_a 4 in
  let ones = Bytes.create (4 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le ones (4 * i) (Int32.bits_of_float 1.0)
  done;
  Cricket.Client.memcpy_h2d client_a ~dst:d_x ones;
  Cricket.Client.memset client_a ~ptr:d_acc ~value:0 ~len:(4 * n);
  for _ = 1 to 7 do step client_a saxpy d_x d_acc n done;
  Printf.printf "node A: after 7 steps, sum = %.0f\n"
    (sum_of client_a reduce d_acc d_out n);

  print_endline "operator: checkpointing node A and migrating the state file";
  Cricket.Client.checkpoint client_a "migrate.ckpt";
  Cricket.Client.close client_a;

  (* --- GPU node B: a different server instance, same checkpoint dir
     (in a real cluster the file moves over the network) --- *)
  let engine_b = Simnet.Engine.create () in
  let node_b =
    Cricket.Server.create ~checkpoint_dir:dir
      ~clock:(Cudasim.Context.engine_clock engine_b) ()
  in
  let client_b = Cricket.Local.connect node_b in
  Cricket.Client.restore client_b "migrate.ckpt";
  print_endline "node B: state restored";

  (* The client reconstructs its local metadata by reloading the module
     bytes it shipped originally (handles for device memory and functions
     are preserved by the checkpoint). *)
  let modul_b = Cricket.Client.module_load client_b module_bytes in
  let saxpy_b =
    Cricket.Client.get_function client_b ~modul:modul_b
      ~name:Gpusim.Kernels.saxpy_name
  in
  let reduce_b =
    Cricket.Client.get_function client_b ~modul:modul_b
      ~name:Gpusim.Kernels.reduce_sum_name
  in
  Printf.printf "node B: sum after migration = %.0f (expected %d)\n"
    (sum_of client_b reduce_b d_acc d_out n)
    (7 * n);
  for _ = 1 to 3 do step client_b saxpy_b d_x d_acc n done;
  Printf.printf "node B: after 3 more steps, sum = %.0f (expected %d)\n"
    (sum_of client_b reduce_b d_acc d_out n)
    (10 * n);
  Sys.remove (Filename.concat dir "migrate.ckpt")
