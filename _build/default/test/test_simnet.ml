(* Tests for the discrete-event core (heap, engine), the virtio queue model
   and the network cost model. *)

module Time = Simnet.Time
module Engine = Simnet.Engine

let check = Alcotest.check

(* --- heap --- *)

let test_heap_ordering () =
  let h = Simnet.Heap.create () in
  List.iter (fun p -> Simnet.Heap.push h ~priority:(Int64.of_int p) p)
    [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Simnet.Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  let h = Simnet.Heap.create () in
  List.iter (fun v -> Simnet.Heap.push h ~priority:7L v) [ "a"; "b"; "c" ];
  let rec drain acc =
    match Simnet.Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check (Alcotest.list Alcotest.string) "insertion order" [ "a"; "b"; "c" ]
    (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap pops sorted"
    QCheck.(list (int_bound 1_000_000))
    (fun l ->
      let h = Simnet.Heap.create () in
      List.iter (fun p -> Simnet.Heap.push h ~priority:(Int64.of_int p) p) l;
      let rec drain acc =
        match Simnet.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.stable_sort compare l)

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e (Time.us 30) (fun () -> log := 3 :: !log);
  Engine.schedule_at e (Time.us 10) (fun () -> log := 1 :: !log);
  Engine.schedule_at e (Time.us 20) (fun () -> log := 2 :: !log);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log);
  check Alcotest.int64 "clock at last event" (Time.us 30) (Engine.now e)

let test_engine_cascading () =
  let e = Engine.create () in
  let fired = ref 0 in
  let rec chain n =
    if n > 0 then
      Engine.schedule_after e (Time.us 1) (fun () ->
          incr fired;
          chain (n - 1))
  in
  chain 5;
  Engine.run e;
  check Alcotest.int "all fired" 5 !fired;
  check Alcotest.int64 "clock" (Time.us 5) (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun us -> Engine.schedule_at e (Time.us us) (fun () -> fired := us :: !fired))
    [ 10; 20; 30 ];
  Engine.run_until e (Time.us 20);
  check (Alcotest.list Alcotest.int) "only due" [ 10; 20 ] (List.rev !fired);
  check Alcotest.int64 "clock exactly" (Time.us 20) (Engine.now e);
  check Alcotest.int "pending" 1 (Engine.pending e)

let test_engine_advance () =
  let e = Engine.create () in
  Engine.advance e (Time.us 5);
  Engine.advance e (Time.us 5);
  check Alcotest.int64 "advance" (Time.us 10) (Engine.now e);
  (match Engine.advance e (-1L) with
  | () -> Alcotest.fail "negative advance must raise"
  | exception Invalid_argument _ -> ());
  Engine.advance_to e (Time.us 3);
  check Alcotest.int64 "no rewind" (Time.us 10) (Engine.now e)

(* --- virtio --- *)

let test_virtio_basic () =
  let q = Simnet.Virtio.create ~size:8 in
  check Alcotest.bool "post" true (Simnet.Virtio.guest_post q 2048);
  check Alcotest.bool "post" true (Simnet.Virtio.guest_post q 2048);
  check Alcotest.int "avail" 2 (Simnet.Virtio.available q);
  (match Simnet.Virtio.host_deliver q ~len:1500 ~mergeable:false with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected 1 buffer");
  let reaped = Simnet.Virtio.guest_collect q in
  check Alcotest.bool "reaped" true (List.map snd reaped = [ 1500 ])

let test_virtio_ring_full () =
  let q = Simnet.Virtio.create ~size:8 in
  for _ = 1 to 8 do
    ignore (Simnet.Virtio.guest_post q 1024)
  done;
  check Alcotest.bool "full" false (Simnet.Virtio.guest_post q 1024)

let test_virtio_mergeable () =
  let q = Simnet.Virtio.create ~size:8 in
  for _ = 1 to 4 do
    ignore (Simnet.Virtio.guest_post q 2048)
  done;
  (* a 9000-byte frame does not fit one 2 KiB buffer... *)
  check Alcotest.bool "non-mergeable drop" true
    (Simnet.Virtio.host_deliver q ~len:9000 ~mergeable:false = None);
  (* ...but spans five mergeable buffers — except only 4 posted, so fails *)
  check Alcotest.bool "insufficient buffers" true
    (Simnet.Virtio.host_deliver q ~len:9000 ~mergeable:true = None);
  ignore (Simnet.Virtio.guest_post q 2048);
  (match Simnet.Virtio.host_deliver q ~len:9000 ~mergeable:true with
  | Some 5 -> ()
  | Some n -> Alcotest.failf "expected 5 buffers, got %d" n
  | None -> Alcotest.fail "expected delivery");
  let reaped = Simnet.Virtio.guest_collect q in
  check Alcotest.int "bytes written" 9000
    (List.fold_left (fun acc (_, w) -> acc + w) 0 reaped);
  let s = Simnet.Virtio.stats q in
  check Alcotest.int "delivered" 1 s.Simnet.Virtio.delivered;
  check Alcotest.int "dropped" 2 s.Simnet.Virtio.dropped

let test_virtio_suppression () =
  let q = Simnet.Virtio.create ~size:16 in
  Simnet.Virtio.host_suppress_notifications q true;
  for _ = 1 to 10 do
    ignore (Simnet.Virtio.guest_post q 1024)
  done;
  check Alcotest.int "no kicks" 0 (Simnet.Virtio.stats q).Simnet.Virtio.kicks;
  Simnet.Virtio.guest_suppress_interrupts q true;
  ignore (Simnet.Virtio.host_deliver q ~len:512 ~mergeable:false);
  check Alcotest.int "no interrupts" 0
    (Simnet.Virtio.stats q).Simnet.Virtio.interrupts

let test_virtio_invalid_size () =
  List.iter
    (fun size ->
      match Simnet.Virtio.create ~size with
      | _ -> Alcotest.failf "size %d must be rejected" size
      | exception Invalid_argument _ -> ())
    [ 0; 7; 12; 4; 65536 ]

(* --- netcost --- *)

let native = Simnet.Hostprofile.bare_metal_linux
let link = Simnet.Link.ethernet_100g

let test_netcost_packets () =
  let mss = Simnet.Link.mss link in
  let b = Simnet.Netcost.one_way ~sender:native ~receiver:native ~link 100 in
  check Alcotest.int "one packet" 1 b.Simnet.Netcost.packets;
  let b2 =
    Simnet.Netcost.one_way ~sender:native ~receiver:native ~link (mss + 1)
  in
  check Alcotest.int "two packets" 2 b2.Simnet.Netcost.packets;
  let b0 = Simnet.Netcost.one_way ~sender:native ~receiver:native ~link 0 in
  check Alcotest.int "empty still a packet" 1 b0.Simnet.Netcost.packets

let test_netcost_monotone_in_size () =
  let t n =
    Simnet.Netcost.one_way_time ~sender:native ~receiver:native ~link n
  in
  let sizes = [ 0; 64; 1024; 9000; 65536; 1 lsl 20; 16 lsl 20 ] in
  let times = List.map t sizes in
  let rec ascending = function
    | a :: (b :: _ as rest) -> Time.compare a b <= 0 && ascending rest
    | _ -> true
  in
  check Alcotest.bool "monotone" true (ascending times)

let test_netcost_offloads_help () =
  let crippled =
    Simnet.Hostprofile.with_offloads native (Simnet.Offload.disable_bulk native.Simnet.Hostprofile.offloads)
  in
  let n = 64 lsl 20 in
  let fast =
    Simnet.Netcost.throughput_bytes_per_s ~sender:native ~receiver:native ~link n
  in
  let slow =
    Simnet.Netcost.throughput_bytes_per_s ~sender:crippled ~receiver:native
      ~link n
  in
  check Alcotest.bool "offloads increase throughput" true (fast > slow *. 1.5)

let test_netcost_latency_floor () =
  (* A 1-byte message can never beat the link latency. *)
  let t = Simnet.Netcost.one_way_time ~sender:native ~receiver:native ~link 1 in
  check Alcotest.bool "above latency" true
    (Time.compare t (Time.ns link.Simnet.Link.latency_ns) > 0)

let test_netcost_negative () =
  match Simnet.Netcost.one_way ~sender:native ~receiver:native ~link (-1) with
  | _ -> Alcotest.fail "negative size must raise"
  | exception Invalid_argument _ -> ()

let prop_netcost_superadditive =
  (* Sending n bytes in one message is never slower than the per-message
     fixed costs would make two half-sized messages. *)
  QCheck.Test.make ~count:100 ~name:"netcost: one message beats two halves"
    QCheck.(int_range 2 (8 lsl 20))
    (fun n ->
      let t k =
        Time.to_float_s
          (Simnet.Netcost.one_way_time ~sender:native ~receiver:native ~link k)
      in
      t n <= t (n / 2) +. t (n - (n / 2)) +. 1e-12)

(* --- random variates --- *)

let test_variate_determinism () =
  let a = Simnet.Random_variate.create ~seed:7 in
  let b = Simnet.Random_variate.create ~seed:7 in
  let c = Simnet.Random_variate.create ~seed:8 in
  let stream g = List.init 20 (fun _ -> Simnet.Random_variate.uniform g) in
  let sa = stream a in
  check Alcotest.bool "same seed same stream" true (sa = stream b);
  check Alcotest.bool "different seed differs" false (sa = stream c);
  List.iter
    (fun v -> check Alcotest.bool "in [0,1)" true (v >= 0.0 && v < 1.0))
    sa

let test_variate_statistics () =
  let g = Simnet.Random_variate.create ~seed:42 in
  let n = 20_000 in
  (* uniform mean ~ 0.5 *)
  let mean f =
    let acc = ref 0.0 in
    for _ = 1 to n do
      acc := !acc +. f ()
    done;
    !acc /. Float.of_int n
  in
  let u = mean (fun () -> Simnet.Random_variate.uniform g) in
  check Alcotest.bool "uniform mean" true (Float.abs (u -. 0.5) < 0.02);
  let e = mean (fun () -> Simnet.Random_variate.exponential g ~mean:3.0) in
  check Alcotest.bool "exponential mean" true (Float.abs (e -. 3.0) < 0.15);
  (* bounded pareto stays in range *)
  for _ = 1 to 1_000 do
    let v = Simnet.Random_variate.pareto g ~shape:1.5 ~scale:1.0 ~max:100.0 in
    if v < 0.999 || v > 100.001 then
      Alcotest.failf "pareto out of range: %f" v
  done;
  (* uniform_int covers its range *)
  let seen = Array.make 10 false in
  for _ = 1 to 1_000 do
    seen.(Simnet.Random_variate.uniform_int g 10) <- true
  done;
  check Alcotest.bool "uniform_int covers" true (Array.for_all Fun.id seen)

let test_poisson_arrivals () =
  let g = Simnet.Random_variate.create ~seed:5 in
  let arrivals =
    Simnet.Random_variate.poisson_arrivals g ~mean_gap:(Time.us 100) ~count:500
  in
  check Alcotest.int "count" 500 (List.length arrivals);
  let rec ascending = function
    | a :: (b :: _ as rest) -> Time.compare a b <= 0 && ascending rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (ascending arrivals);
  (* total span ~ count * mean_gap *)
  let last = List.nth arrivals 499 in
  let span_us = Time.to_float_us last in
  check Alcotest.bool "span plausible" true
    (span_us > 35_000.0 && span_us < 70_000.0)

let suite =
  [
    Alcotest.test_case "variate determinism" `Quick test_variate_determinism;
    Alcotest.test_case "variate statistics" `Quick test_variate_statistics;
    Alcotest.test_case "poisson arrivals" `Quick test_poisson_arrivals;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap FIFO on ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "engine event ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine cascading events" `Quick test_engine_cascading;
    Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine advance" `Quick test_engine_advance;
    Alcotest.test_case "virtio basic" `Quick test_virtio_basic;
    Alcotest.test_case "virtio ring full" `Quick test_virtio_ring_full;
    Alcotest.test_case "virtio mergeable rx buffers" `Quick test_virtio_mergeable;
    Alcotest.test_case "virtio suppression" `Quick test_virtio_suppression;
    Alcotest.test_case "virtio invalid sizes" `Quick test_virtio_invalid_size;
    Alcotest.test_case "netcost packet counts" `Quick test_netcost_packets;
    Alcotest.test_case "netcost monotone" `Quick test_netcost_monotone_in_size;
    Alcotest.test_case "netcost offloads help" `Quick test_netcost_offloads_help;
    Alcotest.test_case "netcost latency floor" `Quick test_netcost_latency_floor;
    Alcotest.test_case "netcost negative size" `Quick test_netcost_negative;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_heap_sorts; prop_netcost_superadditive ]
