(* Tests for the proxy applications and their shared helpers: workload
   utilities, app verification (positive and negative), bandwidth and
   micro-benchmark result plumbing. *)

module Time = Simnet.Time

let check = Alcotest.check

(* --- workload helpers --- *)

let test_f32_roundtrip () =
  (* values exactly representable in binary32 *)
  let a = [| 0.0; 1.5; -2.25; 65536.0; -0.0078125 |] in
  check Alcotest.bool "roundtrip" true (Apps.Workload.f32_array (Apps.Workload.f32_bytes a) = a)

let test_xorshift_deterministic () =
  let a = Apps.Workload.xorshift_bytes ~seed:42 1000 in
  let b = Apps.Workload.xorshift_bytes ~seed:42 1000 in
  let c = Apps.Workload.xorshift_bytes ~seed:43 1000 in
  check Alcotest.bool "same seed, same stream" true (Bytes.equal a b);
  check Alcotest.bool "different seed differs" false (Bytes.equal a c);
  (* rough uniformity: all byte values occur in a large sample *)
  let big = Apps.Workload.xorshift_bytes ~seed:7 (1 lsl 16) in
  let seen = Array.make 256 false in
  Bytes.iter (fun ch -> seen.(Char.code ch) <- true) big;
  check Alcotest.bool "covers byte range" true (Array.for_all Fun.id seen)

let test_approx_equal () =
  check Alcotest.bool "close" true (Apps.Workload.approx_equal 1.0 1.00005);
  check Alcotest.bool "far" false (Apps.Workload.approx_equal 1.0 1.1);
  check Alcotest.bool "relative" true
    (Apps.Workload.approx_equal 1e6 (1e6 +. 50.0))

(* --- app verification catches wrong numerics --- *)

let test_matrix_mul_detects_corruption () =
  (* running non-functionally (kernels don't execute) must fail verify *)
  match
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Matrix_mul.run ~verify:true
         { Apps.Matrix_mul.ha = 32; wa = 32; wb = 32; iterations = 1 })
  with
  | _ -> Alcotest.fail "verification should have failed"
  | exception Failure _ -> ()

let test_histogram_detects_corruption () =
  match
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Histogram.run ~verify:true
         { Apps.Histogram.data_bytes = 4096; iterations = 1 })
  with
  | _ -> Alcotest.fail "verification should have failed"
  | exception Failure _ -> ()

let test_linear_solver_detects_corruption () =
  match
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Linear_solver.run ~verify:true
         { Apps.Linear_solver.n = 32; iterations = 1 })
  with
  | _ -> Alcotest.fail "verification should have failed"
  | exception Failure _ -> ()

let test_bandwidth_verify_roundtrip () =
  ignore
    (Unikernel.Runner.run ~functional:true Unikernel.Config.rust_native
       (fun env ->
         let h2d, d2h = Apps.Bandwidth.run ~verify:true env in
         check Alcotest.bool "h2d positive" true (h2d.Apps.Bandwidth.mib_per_s > 0.0);
         check Alcotest.bool "d2h positive" true (d2h.Apps.Bandwidth.mib_per_s > 0.0)))

(* --- workload profiles --- *)

let test_matrix_mul_dims_validation () =
  match
    Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
      (Apps.Matrix_mul.run ~verify:false
         { Apps.Matrix_mul.ha = 33; wa = 32; wb = 32; iterations = 1 })
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_bandwidth_chunking () =
  ignore
    (Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
       (fun env ->
         let r =
           Apps.Bandwidth.measure ~total_bytes:(10 lsl 20)
             ~chunk_bytes:(4 lsl 20) Apps.Bandwidth.Host_to_device env
         in
         (* rounds up to whole chunks *)
         check Alcotest.int "bytes" (12 lsl 20) r.Apps.Bandwidth.bytes;
         check Alcotest.bool "time positive" true
           (Time.compare r.Apps.Bandwidth.elapsed Time.zero > 0)))

let test_micro_results () =
  ignore
    (Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
       (fun env ->
         let r = Apps.Micro.run ~calls:100 Apps.Micro.Malloc_free env in
         check Alcotest.int "calls" 100 r.Apps.Micro.calls;
         check Alcotest.bool "per-call derived" true
           (Float.abs
              (r.Apps.Micro.ns_per_call
              -. (Int64.to_float r.Apps.Micro.elapsed /. 100.0))
           < 1.0);
         (* malloc/free pair costs more than a plain query *)
         let q = Apps.Micro.run ~calls:100 Apps.Micro.Get_device_count env in
         check Alcotest.bool "pair costs more" true
           (r.Apps.Micro.ns_per_call > q.Apps.Micro.ns_per_call)))

let test_micro_launch_leaves_no_garbage () =
  ignore
    (Unikernel.Runner.run ~functional:false Unikernel.Config.rust_native
       (fun env ->
         let server = env.Unikernel.Runner.server in
         let mem =
           Gpusim.Gpu.memory
             (Cudasim.Context.gpu (Cricket.Server.context server))
         in
         let before = Gpusim.Memory.live_allocations mem in
         ignore (Apps.Micro.run ~calls:50 Apps.Micro.Kernel_launch env);
         check Alcotest.int "allocations released" before
           (Gpusim.Memory.live_allocations mem)))

(* --- determinism: identical runs give identical virtual times --- *)

let test_determinism () =
  let run () =
    (Unikernel.Runner.run ~functional:false Unikernel.Config.hermit
       (Apps.Matrix_mul.run ~verify:false
          { Apps.Matrix_mul.default with Apps.Matrix_mul.iterations = 200 }))
      .Unikernel.Runner.elapsed
  in
  check Alcotest.int64 "bit-identical virtual time" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "f32 bytes roundtrip" `Quick test_f32_roundtrip;
    Alcotest.test_case "xorshift determinism" `Quick
      test_xorshift_deterministic;
    Alcotest.test_case "approx_equal" `Quick test_approx_equal;
    Alcotest.test_case "matrixMul catches corruption" `Quick
      test_matrix_mul_detects_corruption;
    Alcotest.test_case "histogram catches corruption" `Quick
      test_histogram_detects_corruption;
    Alcotest.test_case "solver catches corruption" `Quick
      test_linear_solver_detects_corruption;
    Alcotest.test_case "bandwidth verify roundtrip" `Quick
      test_bandwidth_verify_roundtrip;
    Alcotest.test_case "matrixMul dims validation" `Quick
      test_matrix_mul_dims_validation;
    Alcotest.test_case "bandwidth chunking" `Quick test_bandwidth_chunking;
    Alcotest.test_case "micro results" `Quick test_micro_results;
    Alcotest.test_case "micro launch cleanup" `Quick
      test_micro_launch_leaves_no_garbage;
    Alcotest.test_case "virtual-time determinism" `Quick test_determinism;
  ]
