(* Tests for the RPCL interface-definition-language pipeline: lexer, parser,
   semantic checks and the OCaml stub generator. *)

let check = Alcotest.check

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = List.map fst (Rpcl.Lexer.tokenize "const FOO = 0x10; /* c */ enum") in
  check Alcotest.bool "tokens" true
    (toks
    = [
        Rpcl.Lexer.KW_CONST; Rpcl.Lexer.IDENT "FOO"; Rpcl.Lexer.EQUALS;
        Rpcl.Lexer.NUMBER 16L; Rpcl.Lexer.SEMI; Rpcl.Lexer.KW_ENUM;
        Rpcl.Lexer.EOF;
      ])

let test_lexer_numbers () =
  let num s =
    match Rpcl.Lexer.tokenize s with
    | (Rpcl.Lexer.NUMBER n, _) :: _ -> n
    | _ -> Alcotest.failf "no number in %S" s
  in
  check Alcotest.int64 "dec" 42L (num "42");
  check Alcotest.int64 "neg" (-7L) (num "-7");
  check Alcotest.int64 "hex" 0x20000001L (num "0x20000001");
  check Alcotest.int64 "zero" 0L (num "0")

let test_lexer_comments_and_directives () =
  let toks =
    Rpcl.Lexer.tokenize
      "// line\n# include directive\n%passthrough\nint /* block\nspanning */ x"
    |> List.map fst
  in
  check Alcotest.bool "skipped" true
    (toks = [ Rpcl.Lexer.KW_INT; Rpcl.Lexer.IDENT "x"; Rpcl.Lexer.EOF ])

let test_lexer_positions () =
  match Rpcl.Lexer.tokenize "int\n  foo" with
  | [ _; (Rpcl.Lexer.IDENT "foo", pos); _ ] ->
      check Alcotest.int "line" 2 pos.Rpcl.Ast.line;
      check Alcotest.int "col" 3 pos.Rpcl.Ast.col
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_error () =
  match Rpcl.Lexer.tokenize "int $" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Rpcl.Lexer.Lex_error (_, pos) ->
      check Alcotest.int "line" 1 pos.Rpcl.Ast.line

(* --- parser --- *)

let parse = Rpcl.Parser.parse

let test_parse_const () =
  match parse "const A = 5; const B = 0x10;" with
  | [ Rpcl.Ast.Const ("A", 5L); Rpcl.Ast.Const ("B", 16L) ] -> ()
  | _ -> Alcotest.fail "bad const parse"

let test_parse_enum () =
  match parse "enum color { RED = 0, GREEN = 1, BLUE = 2 };" with
  | [ Rpcl.Ast.Enum e ] ->
      check Alcotest.string "name" "color" e.Rpcl.Ast.enum_name;
      check Alcotest.int "items" 3 (List.length e.Rpcl.Ast.enum_items)
  | _ -> Alcotest.fail "bad enum parse"

let test_parse_struct_decorations () =
  let src =
    "struct s { int a; unsigned int b; unsigned hyper c; opaque d<16>; \
     opaque e[8]; string f<>; int g[4]; int h<>; int *i; float j; double k; \
     bool l; };"
  in
  match parse src with
  | [ Rpcl.Ast.Struct s ] ->
      check Alcotest.int "fields" 12 (List.length s.Rpcl.Ast.struct_fields);
      let open Rpcl.Ast in
      (match s.struct_fields with
      | Scalar (Int, "a") :: Scalar (Uint, "b") :: Scalar (Uhyper, "c")
        :: Var_opaque ("d", Some (Lit 16L)) :: Fixed_opaque ("e", Lit 8L)
        :: String ("f", None) :: Fixed_array (Int, "g", Lit 4L)
        :: Var_array (Int, "h", None) :: Optional (Int, "i")
        :: Scalar (Float, "j") :: Scalar (Double, "k") :: Scalar (Bool, "l")
        :: [] ->
          ()
      | _ -> Alcotest.fail "field shapes wrong")
  | _ -> Alcotest.fail "bad struct parse"

let test_parse_union () =
  let src =
    "union result switch (int status) { case 0: int value; case 1: case 2: \
     void; default: opaque err<>; };"
  in
  match parse src with
  | [ Rpcl.Ast.Union u ] ->
      check Alcotest.int "cases" 2 (List.length u.Rpcl.Ast.union_cases);
      check Alcotest.bool "default" true (u.Rpcl.Ast.union_default <> None);
      let second = List.nth u.Rpcl.Ast.union_cases 1 in
      check Alcotest.int "shared labels" 2
        (List.length second.Rpcl.Ast.case_values)
  | _ -> Alcotest.fail "bad union parse"

let test_parse_program () =
  let src =
    "program PROG { version V1 { int PING(void) = 1; void SET(int, hyper) = \
     2; } = 1; version V2 { int PING(void) = 1; } = 2; } = 0x2000;"
  in
  match parse src with
  | [ Rpcl.Ast.Program p ] ->
      check Alcotest.int "versions" 2 (List.length p.Rpcl.Ast.program_versions);
      let v1 = List.hd p.Rpcl.Ast.program_versions in
      check Alcotest.int "procs" 2 (List.length v1.Rpcl.Ast.version_procedures);
      let set = List.nth v1.Rpcl.Ast.version_procedures 1 in
      check Alcotest.int "args" 2 (List.length set.Rpcl.Ast.proc_args);
      check Alcotest.bool "void result" true (set.Rpcl.Ast.proc_result = None)
  | _ -> Alcotest.fail "bad program parse"

let test_parse_error_position () =
  match parse "struct s { int; };" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Rpcl.Parser.Parse_error (_, pos) ->
      check Alcotest.int "line" 1 pos.Rpcl.Ast.line

let test_parse_cricket_spec () =
  let spec = parse Rpcl.Specs.cricket in
  let programs =
    List.filter_map (function Rpcl.Ast.Program p -> Some p | _ -> None) spec
  in
  check Alcotest.int "one program" 1 (List.length programs);
  let p = List.hd programs in
  let procs =
    List.concat_map
      (fun v -> v.Rpcl.Ast.version_procedures)
      p.Rpcl.Ast.program_versions
  in
  check Alcotest.bool "enough procedures" true (List.length procs >= 30);
  check Alcotest.bool "has launch" true
    (List.exists (fun pr -> pr.Rpcl.Ast.proc_name = "rpc_cuLaunchKernel") procs)

(* --- semantic checks --- *)

let expect_semantic_error src =
  match Rpcl.Check.check (parse src) with
  | _ -> Alcotest.fail "expected Semantic_error"
  | exception Rpcl.Check.Semantic_error _ -> ()

let test_check_resolution () =
  let env =
    Rpcl.Check.check
      (parse "const N = 8; enum e { X = 3 }; struct s { opaque buf<N>; int y[X]; };")
  in
  check Alcotest.int64 "const" 8L (Rpcl.Check.resolve env (Rpcl.Ast.Named "N"));
  check Alcotest.int64 "enum item as const" 3L
    (Rpcl.Check.resolve env (Rpcl.Ast.Named "X"));
  check Alcotest.bool "type exists" true
    (Rpcl.Check.find_type env "s" <> None)

let test_check_errors () =
  expect_semantic_error "struct s { unknown_t x; };";
  expect_semantic_error "struct s { int x; }; struct s { int y; };";
  expect_semantic_error "const A = 1; const A = 2;";
  expect_semantic_error "struct s { opaque b<MISSING>; };";
  expect_semantic_error "struct s { int x; int x; };";
  expect_semantic_error
    "union u switch (float f) { case 0: int x; };" (* bad discriminant *);
  expect_semantic_error
    "union u switch (int d) { case 0: int x; case 0: int y; };";
  expect_semantic_error
    "program P { version V { int A(void) = 1; int B(void) = 1; } = 1; } = 9;";
  expect_semantic_error
    "program P { version V { int A(void) = 1; } = 1; version W { int A(void) \
     = 1; } = 1; } = 9;";
  expect_semantic_error "typedef void;"

let test_check_cricket () =
  let env = Rpcl.Check.check (parse Rpcl.Specs.cricket) in
  check Alcotest.int64 "program number"
    (Int64.of_int Rpcl.Specs.cricket_program_number)
    (Rpcl.Check.resolve env (Rpcl.Ast.Named "RPC_CD_PROG"))

(* --- codegen --- *)

let cricket_generated =
  lazy
    (Rpcl.Codegen.generate ~source_name:"cricket"
       (Rpcl.Check.check (parse Rpcl.Specs.cricket)))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_codegen_contains () =
  let g = Lazy.force cricket_generated in
  List.iter
    (fun needle ->
      check Alcotest.bool needle true (contains ~needle g))
    [
      "type mem_data = bytes";
      "let xdr_encode_launch_config";
      "let rpc_cudaMalloc t (a0 : int64)";
      "module Rpc_cd_prog_def_v1";
      "type implementation = {";
      "rpc_cuLaunchKernel : launch_config -> mem_data -> void_result;";
      "~prog:536870913 ~vers:1";
      "let cuda_success = 0";
    ]

let test_codegen_base_types () =
  check Alcotest.string "int" "int" (Rpcl.Codegen.ocaml_type_of_base Rpcl.Ast.Int);
  check Alcotest.string "uhyper" "int64"
    (Rpcl.Codegen.ocaml_type_of_base Rpcl.Ast.Uhyper);
  check Alcotest.string "double" "float"
    (Rpcl.Codegen.ocaml_type_of_base Rpcl.Ast.Double);
  check Alcotest.string "named" "foo_bar"
    (Rpcl.Codegen.ocaml_type_of_base (Rpcl.Ast.Named_type "Foo_bar"))

let test_codegen_mli () =
  let env = Rpcl.Check.check (parse Rpcl.Specs.cricket) in
  let mli = Rpcl.Codegen.generate_mli ~source_name:"cricket" env in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains ~needle mli))
    [
      "val xdr_encode_launch_config : Xdr.Encode.t -> launch_config -> unit";
      "val xdr_decode_mem_data : Xdr.Decode.t -> mem_data";
      "val rpc_cudaMalloc : t -> int64 -> u64_result";
      "val rpc_cudaGetDeviceCount : t -> unit -> int_result";
      "module Server : sig";
      "val register : implementation -> Oncrpc.Server.t -> unit";
      "val cuda_success : int";
    ];
  (* the build compiles proto.mli against proto.ml, so reaching this point
     with a fresh generation being non-empty is the real assertion *)
  check Alcotest.bool "nonempty" true (String.length mli > 1000)

let test_codegen_deterministic () =
  let again =
    Rpcl.Codegen.generate ~source_name:"cricket"
      (Rpcl.Check.check (parse Rpcl.Specs.cricket))
  in
  check Alcotest.bool "deterministic" true (Lazy.force cricket_generated = again)

(* The generated union code is exercised by encoding/decoding through a tiny
   handwritten mirror of what the generator emits for a test union. The
   generated cricket stubs themselves are compiled and linked by the cricket
   library, which is itself under test elsewhere. *)
let test_union_codegen_shape () =
  let g =
    Rpcl.Codegen.generate
      (Rpcl.Check.check
         (parse
            "enum tag { A = 0, B = 1 }; union u switch (tag t) { case A: int \
             x; case B: void; default: opaque rest<>; };"))
  in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains ~needle g))
    [ "| A of int"; "| B"; "| Default_case of int * bytes";
      "| 0 -> A ("; "| d -> Default_case (d, " ]

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer comments/directives" `Quick
      test_lexer_comments_and_directives;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse const" `Quick test_parse_const;
    Alcotest.test_case "parse enum" `Quick test_parse_enum;
    Alcotest.test_case "parse struct declarations" `Quick
      test_parse_struct_decorations;
    Alcotest.test_case "parse union" `Quick test_parse_union;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "parse cricket spec" `Quick test_parse_cricket_spec;
    Alcotest.test_case "check name resolution" `Quick test_check_resolution;
    Alcotest.test_case "check error cases" `Quick test_check_errors;
    Alcotest.test_case "check cricket spec" `Quick test_check_cricket;
    Alcotest.test_case "codegen fragments" `Quick test_codegen_contains;
    Alcotest.test_case "codegen base types" `Quick test_codegen_base_types;
    Alcotest.test_case "codegen mli" `Quick test_codegen_mli;
    Alcotest.test_case "codegen deterministic" `Quick test_codegen_deterministic;
    Alcotest.test_case "codegen union shape" `Quick test_union_codegen_shape;
  ]
