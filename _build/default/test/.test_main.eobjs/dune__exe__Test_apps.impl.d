test/test_apps.ml: Alcotest Apps Array Bytes Char Cricket Cudasim Float Fun Gpusim Int64 Simnet Unikernel
