test/test_cricket.ml: Alcotest Array Bytes Char Cricket Cubin Cudasim Filename Float Gen Gpusim Int32 Int64 List Oncrpc Printf QCheck QCheck_alcotest Simnet Sys Unix
