test/test_oncrpc.ml: Alcotest Array Bytes Char Gen List Oncrpc Printf QCheck QCheck_alcotest String Thread Unix Xdr
