test/test_tcpstack.ml: Alcotest Bytes Char Gen List Printf QCheck QCheck_alcotest Simnet Tcpstack
