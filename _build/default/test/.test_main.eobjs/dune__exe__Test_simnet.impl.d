test/test_simnet.ml: Alcotest Array Float Fun Int64 List QCheck QCheck_alcotest Simnet
