test/test_fuzz.ml: Alcotest Bytes Char Cricket Cubin Cudasim Gpusim List Oncrpc QCheck QCheck_alcotest Rpcl Simnet String Tcpstack Xdr
