test/test_cubin.ml: Alcotest Array Bytes Char Cubin Gen Gpusim List Printf QCheck QCheck_alcotest String
