test/test_cudasim.ml: Alcotest Array Bytes Char Cubin Cudasim Float Gpusim Int32 Int64 List Option Result Simnet
