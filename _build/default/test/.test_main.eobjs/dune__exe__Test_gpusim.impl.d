test/test_gpusim.ml: Alcotest Array Bytes Char Float Gpusim Int32 List Option Printf QCheck QCheck_alcotest Simnet
