test/test_unikernel.ml: Alcotest Apps Array Bytes Char Cricket Cudasim Float List Printf Simnet Unikernel
