test/test_rpcl.ml: Alcotest Int64 Lazy List Rpcl String
