test/test_xdr.ml: Alcotest Bytes Char Float Int64 List Printf QCheck QCheck_alcotest String Xdr
