bench/main.ml: Apps Array Bechamel_suite Figures List Printf Sys
