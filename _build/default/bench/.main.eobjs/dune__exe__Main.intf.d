bench/main.mli:
