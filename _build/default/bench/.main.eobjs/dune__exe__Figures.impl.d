bench/figures.ml: Apps Cricket Float Format List Oncrpc Printf Simnet Unikernel
