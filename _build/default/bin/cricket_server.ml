(* The Cricket server daemon: listens on a real TCP socket and executes
   forwarded CUDA calls against the simulated GPU node, exactly as the
   original Cricket server fronts the physical GPUs. A portmapper service
   is co-hosted so clients can discover the program. *)

let run port checkpoint_dir devices verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let engine = Simnet.Engine.create () in
  let device_list =
    match devices with
    | [] -> Gpusim.Device.gpu_node
    | names ->
        List.map
          (fun name ->
            match String.lowercase_ascii name with
            | "a100" -> Gpusim.Device.a100
            | "t4" -> Gpusim.Device.t4
            | "p40" -> Gpusim.Device.p40
            | other ->
                Printf.eprintf "unknown device %S (a100|t4|p40)\n" other;
                exit 1)
          names
  in
  let server =
    Cricket.Server.create ~devices:device_list ~checkpoint_dir
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  let rpc = Cricket.Server.rpc_server server in
  let pm = Oncrpc.Portmap.create () in
  Oncrpc.Portmap.attach pm rpc;
  let tcp = Oncrpc.Server.serve_tcp rpc ~port () in
  let bound = Oncrpc.Server.tcp_port tcp in
  ignore
    (Oncrpc.Portmap.set pm
       { Oncrpc.Portmap.prog = Rpcl.Specs.cricket_program_number;
         vers = Rpcl.Specs.cricket_version_number;
         prot = Oncrpc.Portmap.prot_tcp; port = bound });
  Printf.printf "cricket-server: listening on 127.0.0.1:%d\n" bound;
  Printf.printf "cricket-server: program 0x%x version %d\n"
    Rpcl.Specs.cricket_program_number Rpcl.Specs.cricket_version_number;
  List.iter
    (fun d -> Printf.printf "cricket-server: device %s\n" d.Gpusim.Device.name)
    device_list;
  Printf.printf "cricket-server: checkpoints under %s\n%!" checkpoint_dir;
  (* serve until interrupted *)
  let stop = Mutex.create () in
  Mutex.lock stop;
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle (fun _ -> Mutex.unlock stop));
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> Mutex.unlock stop))
   with Invalid_argument _ -> ());
  Mutex.lock stop;
  print_endline "cricket-server: shutting down";
  Oncrpc.Server.shutdown_tcp tcp

open Cmdliner

let port =
  Arg.(value & opt int 0
       & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (0 picks a free port).")

let checkpoint_dir =
  Arg.(value & opt string "."
       & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Directory for checkpoint/restore files.")

let devices =
  Arg.(value & opt_all string []
       & info [ "device" ] ~docv:"NAME"
           ~doc:"GPU to expose (a100, t4, p40; repeatable). Default: the \
                 evaluation node (a100 + 2x t4 + p40).")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log RPC activity.")

let cmd =
  Cmd.v
    (Cmd.info "cricket_server"
       ~doc:"Cricket GPU-forwarding server over ONC RPC / TCP")
    Term.(const run $ port $ checkpoint_dir $ devices $ verbose)

let () = exit (Cmd.eval cmd)
