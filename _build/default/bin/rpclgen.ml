(* rpclgen: the rpcgen analogue. Compiles an RPCL interface specification
   to OCaml client stubs, XDR codecs and a server dispatch skeleton. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run input builtin print_spec emit_mli output =
  let name, source =
    match (builtin, input) with
    | Some b, _ -> (
        match List.assoc_opt b Rpcl.Specs.builtins with
        | Some src -> (b, src)
        | None ->
            Printf.eprintf "rpclgen: unknown builtin %S (available: %s)\n" b
              (String.concat ", " (List.map fst Rpcl.Specs.builtins));
            exit 1)
    | None, Some path -> (Filename.basename path, read_file path)
    | None, None ->
        prerr_endline "rpclgen: provide an input file or --builtin NAME";
        exit 1
  in
  if print_spec then print_string source
  else begin
    let generated =
      try
        let env = Rpcl.Check.check (Rpcl.Parser.parse source) in
        if emit_mli then Rpcl.Codegen.generate_mli ~source_name:name env
        else Rpcl.Codegen.generate ~source_name:name env
      with
      | Rpcl.Lexer.Lex_error (msg, pos) ->
          Printf.eprintf "rpclgen: %s: lexical error: %s at %s\n" name msg
            (Format.asprintf "%a" Rpcl.Ast.pp_position pos);
          exit 1
      | Rpcl.Parser.Parse_error (msg, pos) ->
          Printf.eprintf "rpclgen: %s: parse error: %s at %s\n" name msg
            (Format.asprintf "%a" Rpcl.Ast.pp_position pos);
          exit 1
      | Rpcl.Check.Semantic_error msg ->
          Printf.eprintf "rpclgen: %s: semantic error: %s\n" name msg;
          exit 1
    in
    match output with
    | None -> print_string generated
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc generated)
  end

open Cmdliner

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SPEC.x"
         ~doc:"RPCL specification file to compile.")

let builtin =
  Arg.(value & opt (some string) None & info [ "builtin" ] ~docv:"NAME"
         ~doc:"Use a built-in specification (e.g. $(b,cricket)) instead of a file.")

let print_spec =
  Arg.(value & flag & info [ "print-spec" ]
         ~doc:"Print the RPCL source instead of generating code.")

let emit_mli =
  Arg.(value & flag & info [ "mli" ]
         ~doc:"Generate the interface (.mli) instead of the implementation.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write generated OCaml to $(docv) (default: stdout).")

let cmd =
  let doc = "generate OCaml RPC stubs from RPCL specifications" in
  Cmd.v
    (Cmd.info "rpclgen" ~doc)
    Term.(const run $ input $ builtin $ print_spec $ emit_mli $ output)

let () = exit (Cmd.eval cmd)
