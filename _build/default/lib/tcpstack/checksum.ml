let sum ?(initial = 0) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum";
  let acc = ref initial in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8)
           + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let finish acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  lnot !acc land 0xffff

let checksum b off len = finish (sum b off len)
let verify b off len = checksum b off len = 0
