type t = int

let modulus = 1 lsl 32
let mask = modulus - 1

let add a n = (a + n) land mask

let diff a b =
  let d = (a - b) land mask in
  if d >= modulus / 2 then d - modulus else d

let lt a b = diff a b < 0
let le a b = diff a b <= 0
let gt a b = diff a b > 0
let ge a b = diff a b >= 0

let in_window t ~base ~size =
  let d = diff t base in
  d >= 0 && d < size
