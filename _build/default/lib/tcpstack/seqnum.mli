(** 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).

    Sequence numbers live in a modulo-2³² space; comparisons are defined
    relative to a window smaller than half the space. *)

type t = int
(** Invariant: in [0, 2³² - 1]. *)

val add : t -> int -> t
val diff : t -> t -> int
(** [diff a b] is the signed distance [a - b] interpreted modulo 2³²,
    mapped to [-2³¹ .. 2³¹ - 1]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val in_window : t -> base:t -> size:int -> bool
(** Is [t] within [base, base + size)? *)
