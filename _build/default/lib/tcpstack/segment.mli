(** TCP segment representation and wire codec.

    A 20-byte header (no options) followed by the payload, checksummed
    together with the RFC 793 pseudo-header. The codec is used both by the
    state machine and by tests that corrupt bytes on the wire to check that
    software checksum verification rejects them. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

val flags_none : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqnum.t;
  ack : Seqnum.t;
  flags : flags;
  window : int;
  payload : bytes;
}

val seq_length : t -> int
(** Sequence-space length: payload bytes plus one for SYN and for FIN. *)

val encode : src_ip:int32 -> dst_ip:int32 -> t -> bytes
(** Serialize with a valid checksum over the pseudo-header. *)

val decode : src_ip:int32 -> dst_ip:int32 -> bytes -> (t, string) result
(** Parse and verify the checksum; [Error] on truncation or corruption. *)

val pp : Format.formatter -> t -> unit
