module Time = Simnet.Time
module Engine = Simnet.Engine

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RECEIVED"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

type stats = {
  segments_sent : int;
  segments_received : int;
  retransmissions : int;
  fast_retransmissions : int;
  bytes_sent : int;
  bytes_received : int;
}

(* A sent-but-unacknowledged segment, kept for retransmission. *)
type pending = { seq : Seqnum.t; payload : bytes; syn : bool; fin : bool }

type t = {
  engine : Engine.t;
  name : string;
  mss : int;
  local_port : int;
  remote_port : int;
  rcv_window : int;
  rto : Time.t;
  mutable state : state;
  mutable snd_una : Seqnum.t;
  mutable snd_nxt : Seqnum.t;
  mutable snd_wnd : int;
  mutable rcv_nxt : Seqnum.t;
  send_buf : Buffer.t;  (* app data not yet segmented *)
  recv_buf : Buffer.t;  (* in-order data not yet read by the app *)
  mutable ooo : (Seqnum.t * bytes) list;  (* out-of-order segments, by seq *)
  mutable inflight : pending list;  (* oldest first *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable tx : Segment.t -> unit;
  mutable rto_generation : int;
  mutable retransmit_count : int;
  mutable cwnd : int;  (* congestion window, bytes *)
  mutable ssthresh : int;
  mutable dup_acks : int;
  mutable fast_retransmits : int;
  mutable segments_sent : int;
  mutable segments_received : int;
  mutable retransmissions : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let max_retransmits = 8

let create ~engine ~name ~mss ~iss ~local_port ~remote_port
    ?(rcv_window = 1 lsl 20) ?(rto = Time.ms 200) () =
  if mss <= 0 then invalid_arg "Endpoint.create: mss";
  {
    engine; name; mss; local_port; remote_port; rcv_window; rto;
    state = Closed;
    snd_una = iss;
    snd_nxt = iss;
    snd_wnd = 0;
    rcv_nxt = 0;
    send_buf = Buffer.create 4096;
    recv_buf = Buffer.create 4096;
    ooo = [];
    inflight = [];
    fin_queued = false;
    fin_sent = false;
    tx = (fun _ -> ());
    rto_generation = 0;
    retransmit_count = 0;
    cwnd = 10 * mss;  (* RFC 6928 initial window *)
    ssthresh = max_int;
    dup_acks = 0;
    fast_retransmits = 0;
    segments_sent = 0;
    segments_received = 0;
    retransmissions = 0;
    bytes_sent = 0;
    bytes_received = 0;
  }

let set_tx t fn = t.tx <- fn
let state t = t.state

let stats t =
  { segments_sent = t.segments_sent; segments_received = t.segments_received;
    retransmissions = t.retransmissions;
    fast_retransmissions = t.fast_retransmits; bytes_sent = t.bytes_sent;
    bytes_received = t.bytes_received }

let congestion_window t = t.cwnd

let unacked t = Seqnum.diff t.snd_nxt t.snd_una

let emit t ?(payload = Bytes.empty) ~seq ~flags () =
  let seg =
    { Segment.src_port = t.local_port; dst_port = t.remote_port; seq;
      ack = t.rcv_nxt; flags; window = t.rcv_window; payload }
  in
  t.segments_sent <- t.segments_sent + 1;
  t.bytes_sent <- t.bytes_sent + Bytes.length payload;
  t.tx seg

let send_ack t =
  emit t ~seq:t.snd_nxt
    ~flags:{ Segment.flags_none with ack = true }
    ()

(* Every segment carries ACK except the initial SYN of an active open
   (which is also what a retransmission must reproduce). *)
let pending_flags t p =
  { Segment.syn = p.syn; fin = p.fin; rst = false;
    psh = Bytes.length p.payload > 0;
    ack = not (p.syn && t.state = Syn_sent) }

let transmit_pending t p =
  emit t ~payload:p.payload ~seq:p.seq ~flags:(pending_flags t p) ()

let rec arm_rto t =
  t.rto_generation <- t.rto_generation + 1;
  let generation = t.rto_generation in
  Engine.schedule_after t.engine t.rto (fun () -> on_rto t generation)

and on_rto t generation =
  if generation = t.rto_generation && t.inflight <> [] && t.state <> Closed
  then begin
    t.retransmit_count <- t.retransmit_count + 1;
    if t.retransmit_count > max_retransmits then t.state <- Closed
    else begin
      (* RFC 5681: timeout collapses the window to one segment *)
      t.ssthresh <- max (2 * t.mss) (unacked t / 2);
      t.cwnd <- t.mss;
      t.dup_acks <- 0;
      (match t.inflight with
      | p :: _ ->
          t.retransmissions <- t.retransmissions + 1;
          transmit_pending t p
      | [] -> ());
      arm_rto t
    end
  end

(* Track a new sequence-space-consuming segment and put it on the wire. *)
let send_pending t p =
  t.inflight <- t.inflight @ [ p ];
  t.snd_nxt <-
    Seqnum.add p.seq
      (Bytes.length p.payload + (if p.syn then 1 else 0)
      + if p.fin then 1 else 0);
  transmit_pending t p;
  if List.length t.inflight = 1 then arm_rto t

(* Segment whatever the window allows out of the send buffer. *)
let rec pump t =
  match t.state with
  | Established | Close_wait | Fin_wait_1 | Closing | Last_ack ->
      let window_left = (min t.snd_wnd t.cwnd) - unacked t in
      let buffered = Buffer.length t.send_buf in
      if buffered > 0 && window_left > 0 then begin
        let len = min (min t.mss buffered) window_left in
        let payload = Bytes.create len in
        Buffer.blit t.send_buf 0 payload 0 len;
        let rest = Buffer.sub t.send_buf len (buffered - len) in
        Buffer.clear t.send_buf;
        Buffer.add_string t.send_buf rest;
        send_pending t { seq = t.snd_nxt; payload; syn = false; fin = false };
        pump t
      end
      else if
        buffered = 0 && t.fin_queued && (not t.fin_sent) && window_left > 0
      then begin
        t.fin_sent <- true;
        send_pending t
          { seq = t.snd_nxt; payload = Bytes.empty; syn = false; fin = true };
        match t.state with
        | Established -> t.state <- Fin_wait_1
        | Close_wait -> t.state <- Last_ack
        | _ -> ()
      end
  | Closed | Listen | Syn_sent | Syn_received | Fin_wait_2 | Time_wait -> ()

let connect t =
  if t.state <> Closed then invalid_arg "Endpoint.connect: not closed";
  t.state <- Syn_sent;
  send_pending t
    { seq = t.snd_nxt; payload = Bytes.empty; syn = true; fin = false }

let listen t =
  if t.state <> Closed then invalid_arg "Endpoint.listen: not closed";
  t.state <- Listen

let send t data =
  Buffer.add_bytes t.send_buf data;
  pump t

let close t =
  if not t.fin_queued then begin
    t.fin_queued <- true;
    pump t
  end

let recv t =
  let data = Buffer.to_bytes t.recv_buf in
  Buffer.clear t.recv_buf;
  data

let enter_time_wait t =
  t.state <- Time_wait;
  let generation = t.rto_generation + 1 in
  t.rto_generation <- generation;
  Engine.schedule_after t.engine (Time.add t.rto t.rto) (fun () ->
      if t.rto_generation = generation then t.state <- Closed)

let max_cwnd = 4 lsl 20

(* Process an acceptable ACK: advance snd_una, prune the retransmit queue,
   grow the congestion window (RFC 5681 slow start / congestion
   avoidance), and run fast retransmit on the third duplicate ACK. *)
let process_ack t (seg : Segment.t) =
  if Seqnum.gt seg.Segment.ack t.snd_una && Seqnum.le seg.Segment.ack t.snd_nxt
  then begin
    t.snd_una <- seg.Segment.ack;
    t.retransmit_count <- 0;
    t.dup_acks <- 0;
    t.cwnd <-
      min max_cwnd
        (if t.cwnd < t.ssthresh then t.cwnd + t.mss (* slow start *)
         else t.cwnd + max 1 (t.mss * t.mss / t.cwnd));
    let fin_was_outstanding = t.fin_sent in
    t.inflight <-
      List.filter
        (fun p ->
          let seg_end =
            Seqnum.add p.seq
              (Bytes.length p.payload + (if p.syn then 1 else 0)
              + if p.fin then 1 else 0)
          in
          Seqnum.gt seg_end t.snd_una)
        t.inflight;
    if t.inflight = [] then t.rto_generation <- t.rto_generation + 1
    else arm_rto t;
    (* Did this ACK cover our FIN? *)
    let fin_acked =
      fin_was_outstanding
      && not (List.exists (fun p -> p.fin) t.inflight)
      && Seqnum.ge t.snd_una t.snd_nxt
    in
    if fin_acked then begin
      match t.state with
      | Fin_wait_1 -> t.state <- Fin_wait_2
      | Closing -> enter_time_wait t
      | Last_ack -> t.state <- Closed
      | _ -> ()
    end
  end
  else if
    seg.Segment.ack = t.snd_una && t.inflight <> []
    && Bytes.length seg.Segment.payload = 0
    && (not seg.Segment.flags.Segment.syn)
    && not seg.Segment.flags.Segment.fin
  then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 then begin
      (* fast retransmit: resend the presumed-lost head of the queue
         without waiting for the RTO *)
      t.ssthresh <- max (2 * t.mss) (unacked t / 2);
      t.cwnd <- t.ssthresh + (3 * t.mss);
      (match t.inflight with
      | p :: _ ->
          t.fast_retransmits <- t.fast_retransmits + 1;
          t.retransmissions <- t.retransmissions + 1;
          transmit_pending t p;
          arm_rto t
      | [] -> ())
    end
  end;
  t.snd_wnd <- seg.Segment.window

let max_ooo_segments = 256

(* Splice any buffered out-of-order segments that are now in order. *)
let rec drain_ooo t =
  match t.ooo with
  | (seq, payload) :: rest when seq = t.rcv_nxt ->
      Buffer.add_bytes t.recv_buf payload;
      t.rcv_nxt <- Seqnum.add t.rcv_nxt (Bytes.length payload);
      t.bytes_received <- t.bytes_received + Bytes.length payload;
      t.ooo <- rest;
      drain_ooo t
  | (seq, _) :: rest when Seqnum.lt seq t.rcv_nxt ->
      (* stale duplicate overtaken by retransmission *)
      t.ooo <- rest;
      drain_ooo t
  | _ -> ()

let buffer_ooo t seq payload =
  if
    List.length t.ooo < max_ooo_segments
    && not (List.exists (fun (s, _) -> s = seq) t.ooo)
  then
    t.ooo <-
      List.sort (fun (a, _) (b, _) -> Seqnum.diff a b) ((seq, payload) :: t.ooo)

let deliver_payload t (seg : Segment.t) =
  let len = Bytes.length seg.Segment.payload in
  if len = 0 then true
  else if seg.Segment.seq = t.rcv_nxt then begin
    Buffer.add_bytes t.recv_buf seg.Segment.payload;
    t.rcv_nxt <- Seqnum.add t.rcv_nxt len;
    t.bytes_received <- t.bytes_received + len;
    drain_ooo t;
    true
  end
  else if Seqnum.gt seg.Segment.seq t.rcv_nxt then begin
    (* a hole: buffer for reassembly, emit a duplicate ACK so the sender's
       fast-retransmit logic learns about the loss *)
    buffer_ooo t seg.Segment.seq seg.Segment.payload;
    send_ack t;
    false
  end
  else begin
    (* old duplicate: re-ACK what we have *)
    send_ack t;
    false
  end

let handle_fin t (seg : Segment.t) in_order =
  if seg.Segment.flags.Segment.fin && in_order then begin
    (* FIN occupies one sequence number after the payload *)
    if Seqnum.add seg.Segment.seq (Bytes.length seg.Segment.payload) = t.rcv_nxt
    then begin
      t.rcv_nxt <- Seqnum.add t.rcv_nxt 1;
      (match t.state with
      | Established -> t.state <- Close_wait
      | Fin_wait_1 ->
          (* our FIN not yet acked: simultaneous close *)
          t.state <- Closing
      | Fin_wait_2 -> enter_time_wait t
      | s -> ignore s);
      send_ack t
    end
  end

let on_segment t (seg : Segment.t) =
  t.segments_received <- t.segments_received + 1;
  if seg.Segment.flags.Segment.rst then t.state <- Closed
  else
    match t.state with
    | Closed -> ()
    | Listen ->
        if seg.Segment.flags.Segment.syn then begin
          t.rcv_nxt <- Seqnum.add seg.Segment.seq 1;
          t.snd_wnd <- seg.Segment.window;
          t.state <- Syn_received;
          (* SYN+ACK consumes a sequence number; tracked for retransmit *)
          send_pending t
            { seq = t.snd_nxt; payload = Bytes.empty; syn = true; fin = false }
        end
    | Syn_sent ->
        if seg.Segment.flags.Segment.syn && seg.Segment.flags.Segment.ack
           && seg.Segment.ack = t.snd_nxt
        then begin
          t.rcv_nxt <- Seqnum.add seg.Segment.seq 1;
          process_ack t seg;
          t.state <- Established;
          send_ack t;
          pump t
        end
    | Syn_received ->
        if seg.Segment.flags.Segment.ack && seg.Segment.ack = t.snd_nxt then begin
          process_ack t seg;
          t.state <- Established;
          let in_order = deliver_payload t seg in
          if Bytes.length seg.Segment.payload > 0 && in_order then send_ack t;
          handle_fin t seg in_order;
          pump t
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
      ->
        if seg.Segment.flags.Segment.ack then process_ack t seg;
        let in_order = deliver_payload t seg in
        if Bytes.length seg.Segment.payload > 0 && in_order then send_ack t;
        handle_fin t seg in_order;
        pump t
    | Time_wait ->
        (* retransmitted FIN: re-ACK *)
        if seg.Segment.flags.Segment.fin then send_ack t
