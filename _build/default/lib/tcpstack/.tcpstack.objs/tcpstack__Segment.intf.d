lib/tcpstack/segment.mli: Format Seqnum
