lib/tcpstack/endpoint.mli: Segment Seqnum Simnet
