lib/tcpstack/medium.mli: Endpoint Simnet
