lib/tcpstack/medium.ml: Bytes Char Endpoint Int32 Segment Simnet
