lib/tcpstack/segment.ml: Bytes Char Checksum Format Int32 Seqnum
