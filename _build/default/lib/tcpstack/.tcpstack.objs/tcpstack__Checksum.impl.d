lib/tcpstack/checksum.ml: Bytes Char
