lib/tcpstack/checksum.mli:
