lib/tcpstack/seqnum.ml:
