lib/tcpstack/seqnum.mli:
