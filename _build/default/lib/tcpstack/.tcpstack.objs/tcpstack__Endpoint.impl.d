lib/tcpstack/endpoint.ml: Buffer Bytes List Segment Seqnum Simnet
