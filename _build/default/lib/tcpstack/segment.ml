type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

let flags_none = { syn = false; ack = false; fin = false; rst = false; psh = false }

type t = {
  src_port : int;
  dst_port : int;
  seq : Seqnum.t;
  ack : Seqnum.t;
  flags : flags;
  window : int;
  payload : bytes;
}

let seq_length t =
  Bytes.length t.payload
  + (if t.flags.syn then 1 else 0)
  + (if t.flags.fin then 1 else 0)

let header_len = 20

let flag_bits f =
  (if f.fin then 0x01 else 0)
  lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0)
  lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0)

let bits_flags v =
  {
    fin = v land 0x01 <> 0;
    syn = v land 0x02 <> 0;
    rst = v land 0x04 <> 0;
    psh = v land 0x08 <> 0;
    ack = v land 0x10 <> 0;
  }

let set_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let get_u16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set_u32 b off v =
  set_u16 b off ((v lsr 16) land 0xffff);
  set_u16 b (off + 2) (v land 0xffff)

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

(* RFC 793 pseudo-header: src ip, dst ip, zero, protocol (6), tcp length *)
let pseudo_header_sum ~src_ip ~dst_ip ~tcp_len =
  let ph = Bytes.create 12 in
  set_u32 ph 0 (Int32.to_int src_ip land 0xffffffff);
  set_u32 ph 4 (Int32.to_int dst_ip land 0xffffffff);
  Bytes.set ph 8 '\000';
  Bytes.set ph 9 '\006';
  set_u16 ph 10 tcp_len;
  Checksum.sum ph 0 12

let encode ~src_ip ~dst_ip t =
  let payload_len = Bytes.length t.payload in
  let b = Bytes.create (header_len + payload_len) in
  set_u16 b 0 t.src_port;
  set_u16 b 2 t.dst_port;
  set_u32 b 4 t.seq;
  set_u32 b 8 t.ack;
  (* data offset 5 (20 bytes), reserved 0 *)
  Bytes.set b 12 (Char.chr (5 lsl 4));
  Bytes.set b 13 (Char.chr (flag_bits t.flags));
  set_u16 b 14 (min t.window 0xffff);
  set_u16 b 16 0 (* checksum placeholder *);
  set_u16 b 18 0 (* urgent pointer *);
  Bytes.blit t.payload 0 b header_len payload_len;
  let csum =
    Checksum.finish
      (Checksum.sum
         ~initial:(pseudo_header_sum ~src_ip ~dst_ip ~tcp_len:(Bytes.length b))
         b 0 (Bytes.length b))
  in
  set_u16 b 16 csum;
  b

let decode ~src_ip ~dst_ip b =
  if Bytes.length b < header_len then Error "truncated segment"
  else begin
    let total =
      Checksum.finish
        (Checksum.sum
           ~initial:(pseudo_header_sum ~src_ip ~dst_ip ~tcp_len:(Bytes.length b))
           b 0 (Bytes.length b))
    in
    if total <> 0 then Error "bad checksum"
    else begin
      let data_offset = Char.code (Bytes.get b 12) lsr 4 in
      if data_offset < 5 || data_offset * 4 > Bytes.length b then
        Error "bad data offset"
      else
        Ok
          {
            src_port = get_u16 b 0;
            dst_port = get_u16 b 2;
            seq = get_u32 b 4;
            ack = get_u32 b 8;
            flags = bits_flags (Char.code (Bytes.get b 13));
            window = get_u16 b 14;
            payload =
              Bytes.sub b (data_offset * 4) (Bytes.length b - (data_offset * 4));
          }
    end
  end

let pp ppf t =
  let f = t.flags in
  Format.fprintf ppf "%d->%d seq=%d ack=%d%s%s%s%s%s win=%d len=%d" t.src_port
    t.dst_port t.seq t.ack
    (if f.syn then " SYN" else "")
    (if f.ack then " ACK" else "")
    (if f.fin then " FIN" else "")
    (if f.rst then " RST" else "")
    (if f.psh then " PSH" else "")
    t.window (Bytes.length t.payload)
