(** Wire between two {!Endpoint}s, driven by the simulation engine.

    Each transmitted segment is encoded to bytes (with a real checksum),
    optionally dropped or corrupted by fault-injection hooks, and scheduled
    for delivery after the link's serialization + propagation delay. The
    receiver decodes and checksum-verifies before the segment reaches the
    state machine — a corrupted segment is silently discarded, exactly like
    a NIC without validated checksum would discard it, and recovery happens
    via the sender's retransmission timer. *)

type t

val connect :
  engine:Simnet.Engine.t ->
  link:Simnet.Link.t ->
  ?drop:(int -> bool) ->
  ?corrupt:(int -> bool) ->
  Endpoint.t ->
  Endpoint.t ->
  t
(** Wire two endpoints together. [drop n]/[corrupt n] decide the fate of
    the [n]-th transmitted segment (0-based, counting both directions). *)

val transmitted : t -> int
(** Total segments handed to the wire (including dropped/corrupted). *)

val delivered : t -> int
