(** Kernel registry: named device functions with real implementations and
    analytic cost models.

    Plays the role of the GPU instruction stream: a cubin's "code" section
    names one of these kernels, the simulator executes the implementation
    against device {!Memory} (so applications produce genuinely correct
    results), and the cost model yields the virtual execution time from the
    device profile, grid geometry and arguments.

    The built-in set covers the CUDA-sample proxy applications of the
    paper's evaluation (matrixMul, histogram) plus generic utility kernels
    used by tests and examples. *)

(** A launch-parameter value, as unpacked from the packed parameter buffer
    according to the kernel's metadata. *)
type arg = I32 of int32 | I64 of int64 | F32 of float | F64 of float | Ptr of int

(** Parameter type descriptors — the cubin metadata Cricket extracts so it
    can (de)serialize launch parameters. *)
type param = P_i32 | P_i64 | P_f32 | P_f64 | P_ptr

val param_size : param -> int
(** Bytes occupied in the packed, naturally-aligned parameter buffer. *)

type dim3 = { x : int; y : int; z : int }

type launch = {
  grid : dim3;
  block : dim3;
  shared_mem : int;
  args : arg array;
}

type t = {
  name : string;
  params : param list;
  execute : Memory.t -> launch -> unit;
  cost : Device.t -> launch -> float;  (** execution time in ns *)
}

exception Bad_args of string
(** Raised by [execute] when args don't match [params]. *)

val register : t -> unit
(** Add to the global registry (replaces an existing kernel of the same
    name). *)

val find : string -> t option
val names : unit -> string list

(** {1 Built-in kernels (registered at module init)} *)

val matrix_mul_name : string
(** ["matrixMulCUDA"]: C(hA×wB) = A(hA×wA) × B(wA×wB), f32 row-major.
    Params: [Ptr c; Ptr a; Ptr b; I32 wA; I32 wB]; grid.y*block.y = hA,
    grid.x*block.x = wB. *)

val histogram256_name : string
(** ["histogram256Kernel"]: byte histogram into 256 u32 bins.
    Params: [Ptr bins; Ptr data; I32 byte_count]. *)

val merge_histogram256_name : string
(** ["mergeHistogram256Kernel"]: sum [n] partial 256-bin histograms.
    Params: [Ptr out; Ptr partials; I32 n]. *)

val vector_add_name : string
(** ["vectorAdd"]: c = a + b over f32. Params: [Ptr a; Ptr b; Ptr c; I32 n]. *)

val saxpy_name : string
(** ["saxpy"]: y = a*x + y. Params: [F32 a; Ptr x; Ptr y; I32 n]. *)

val reduce_sum_name : string
(** ["reduceSum"]: out[0] = Σ in[i] (f32). Params: [Ptr in; Ptr out; I32 n]. *)

val transpose_name : string
(** ["transpose"]: out(cols×rows) = inᵀ. Params: [Ptr out; Ptr in; I32 rows;
    I32 cols]. *)

val fill_name : string
(** ["fillKernel"]: x[i] = v. Params: [Ptr x; F32 v; I32 n]. *)

val nbody_name : string
(** ["nbodyKernel"]: one softened all-pairs gravity step. Bodies are
    (x,y,z,mass) float4s, velocities (vx,vy,vz,_) float4s.
    Params: [Ptr pos; Ptr vel; F32 dt; I32 n]. *)
