type arg = I32 of int32 | I64 of int64 | F32 of float | F64 of float | Ptr of int

type param = P_i32 | P_i64 | P_f32 | P_f64 | P_ptr

let param_size = function
  | P_i32 | P_f32 -> 4
  | P_i64 | P_f64 | P_ptr -> 8

type dim3 = { x : int; y : int; z : int }

type launch = {
  grid : dim3;
  block : dim3;
  shared_mem : int;
  args : arg array;
}

type t = {
  name : string;
  params : param list;
  execute : Memory.t -> launch -> unit;
  cost : Device.t -> launch -> float;
}

exception Bad_args of string

let () =
  Printexc.register_printer (function
    | Bad_args msg -> Some ("Gpusim.Kernels.Bad_args: " ^ msg)
    | _ -> None)

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register k = Hashtbl.replace registry k.name k
let find name = Hashtbl.find_opt registry name
let names () = Hashtbl.fold (fun name _ acc -> name :: acc) registry []

(* --- argument helpers --- *)

let bad fmt = Format.kasprintf (fun m -> raise (Bad_args m)) fmt

let ptr_arg name args i =
  match args.(i) with
  | Ptr p -> p
  | _ -> bad "%s: arg %d must be a pointer" name i

let i32_arg name args i =
  match args.(i) with
  | I32 v -> Int32.to_int v
  | _ -> bad "%s: arg %d must be an i32" name i

let f32_arg name args i =
  match args.(i) with
  | F32 v -> v
  | _ -> bad "%s: arg %d must be an f32" name i

let check_arity name params args =
  if Array.length args <> List.length params then
    bad "%s: expected %d args, got %d" name (List.length params)
      (Array.length args)

(* --- timing helpers --- *)

let grid_blocks l = l.grid.x * l.grid.y * l.grid.z

(* Roofline-style estimate: whichever of compute and DRAM traffic takes
   longer, plus a per-wave scheduling cost once every SM has a block.
   Streaming kernels sustain ~85 % of datasheet bandwidth. *)
let roofline (d : Device.t) l ~flops ~bytes ~precision =
  let compute_ns = flops /. Device.effective_flops d precision *. 1e9 in
  let memory_ns = bytes /. (d.Device.memory_bandwidth *. 0.85) *. 1e9 in
  let waves =
    Float.of_int (grid_blocks l) /. Float.of_int d.Device.multi_processor_count
  in
  Float.max compute_ns memory_ns +. (Float.max 1.0 waves *. 500.0)

(* --- built-in kernels --- *)

let matrix_mul_name = "matrixMulCUDA"

let matrix_mul =
  let params = [ P_ptr; P_ptr; P_ptr; P_i32; P_i32 ] in
  let execute mem l =
    check_arity matrix_mul_name params l.args;
    let c = ptr_arg matrix_mul_name l.args 0 in
    let a = ptr_arg matrix_mul_name l.args 1 in
    let b = ptr_arg matrix_mul_name l.args 2 in
    let wa = i32_arg matrix_mul_name l.args 3 in
    let wb = i32_arg matrix_mul_name l.args 4 in
    let ha = l.grid.y * l.block.y in
    (* row-major SGEMM: C[i,j] = Σk A[i,k] * B[k,j] *)
    for i = 0 to ha - 1 do
      for j = 0 to wb - 1 do
        let acc = ref 0.0 in
        for k = 0 to wa - 1 do
          acc :=
            !acc
            +. Memory.get_f32 mem (a + (4 * ((i * wa) + k)))
               *. Memory.get_f32 mem (b + (4 * ((k * wb) + j)))
        done;
        (* f32 accumulation happens in f32 on the device *)
        Memory.set_f32 mem (c + (4 * ((i * wb) + j))) !acc
      done
    done
  in
  let cost d l =
    let wa = i32_arg matrix_mul_name l.args 3 in
    let wb = i32_arg matrix_mul_name l.args 4 in
    let ha = l.grid.y * l.block.y in
    let flops = 2.0 *. Float.of_int ha *. Float.of_int wa *. Float.of_int wb in
    let bytes = 4.0 *. Float.of_int ((ha * wa) + (wa * wb) + (ha * wb)) in
    roofline d l ~flops ~bytes ~precision:`F32
  in
  { name = matrix_mul_name; params; execute; cost }

let histogram256_name = "histogram256Kernel"

let histogram256 =
  let params = [ P_ptr; P_ptr; P_i32 ] in
  let execute mem l =
    check_arity histogram256_name params l.args;
    let bins = ptr_arg histogram256_name l.args 0 in
    let data = ptr_arg histogram256_name l.args 1 in
    let count = i32_arg histogram256_name l.args 2 in
    for b = 0 to 255 do
      Memory.set_i32 mem (bins + (4 * b)) 0l
    done;
    for i = 0 to count - 1 do
      let v = Memory.get_u8 mem (data + i) in
      let slot = bins + (4 * v) in
      Memory.set_i32 mem slot (Int32.add (Memory.get_i32 mem slot) 1l)
    done
  in
  let cost d l =
    let count = Float.of_int (i32_arg histogram256_name l.args 2) in
    (* DRAM traffic is the byte stream; atomics stay in shared memory/L2 *)
    roofline d l ~flops:(2.0 *. count) ~bytes:count ~precision:`F32
  in
  { name = histogram256_name; params; execute; cost }

let merge_histogram256_name = "mergeHistogram256Kernel"

let merge_histogram256 =
  let params = [ P_ptr; P_ptr; P_i32 ] in
  let execute mem l =
    check_arity merge_histogram256_name params l.args;
    let out = ptr_arg merge_histogram256_name l.args 0 in
    let partials = ptr_arg merge_histogram256_name l.args 1 in
    let n = i32_arg merge_histogram256_name l.args 2 in
    for b = 0 to 255 do
      let acc = ref 0l in
      for p = 0 to n - 1 do
        acc := Int32.add !acc (Memory.get_i32 mem (partials + (4 * ((p * 256) + b))))
      done;
      Memory.set_i32 mem (out + (4 * b)) !acc
    done
  in
  let cost d l =
    let n = Float.of_int (i32_arg merge_histogram256_name l.args 2) in
    roofline d l ~flops:(256.0 *. n) ~bytes:(4.0 *. 256.0 *. (n +. 1.0))
      ~precision:`F32
  in
  { name = merge_histogram256_name; params; execute; cost }

let vector_add_name = "vectorAdd"

let vector_add =
  let params = [ P_ptr; P_ptr; P_ptr; P_i32 ] in
  let execute mem l =
    check_arity vector_add_name params l.args;
    let a = ptr_arg vector_add_name l.args 0 in
    let b = ptr_arg vector_add_name l.args 1 in
    let c = ptr_arg vector_add_name l.args 2 in
    let n = i32_arg vector_add_name l.args 3 in
    for i = 0 to n - 1 do
      Memory.set_f32 mem
        (c + (4 * i))
        (Memory.get_f32 mem (a + (4 * i)) +. Memory.get_f32 mem (b + (4 * i)))
    done
  in
  let cost d l =
    let n = Float.of_int (i32_arg vector_add_name l.args 3) in
    roofline d l ~flops:n ~bytes:(12.0 *. n) ~precision:`F32
  in
  { name = vector_add_name; params; execute; cost }

let saxpy_name = "saxpy"

let saxpy =
  let params = [ P_f32; P_ptr; P_ptr; P_i32 ] in
  let execute mem l =
    check_arity saxpy_name params l.args;
    let a = f32_arg saxpy_name l.args 0 in
    let x = ptr_arg saxpy_name l.args 1 in
    let y = ptr_arg saxpy_name l.args 2 in
    let n = i32_arg saxpy_name l.args 3 in
    for i = 0 to n - 1 do
      Memory.set_f32 mem
        (y + (4 * i))
        ((a *. Memory.get_f32 mem (x + (4 * i)))
        +. Memory.get_f32 mem (y + (4 * i)))
    done
  in
  let cost d l =
    let n = Float.of_int (i32_arg saxpy_name l.args 3) in
    roofline d l ~flops:(2.0 *. n) ~bytes:(12.0 *. n) ~precision:`F32
  in
  { name = saxpy_name; params; execute; cost }

let reduce_sum_name = "reduceSum"

let reduce_sum =
  let params = [ P_ptr; P_ptr; P_i32 ] in
  let execute mem l =
    check_arity reduce_sum_name params l.args;
    let input = ptr_arg reduce_sum_name l.args 0 in
    let out = ptr_arg reduce_sum_name l.args 1 in
    let n = i32_arg reduce_sum_name l.args 2 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. Memory.get_f32 mem (input + (4 * i))
    done;
    Memory.set_f32 mem out !acc
  in
  let cost d l =
    let n = Float.of_int (i32_arg reduce_sum_name l.args 2) in
    roofline d l ~flops:n ~bytes:(4.0 *. n) ~precision:`F32
  in
  { name = reduce_sum_name; params; execute; cost }

let transpose_name = "transpose"

let transpose =
  let params = [ P_ptr; P_ptr; P_i32; P_i32 ] in
  let execute mem l =
    check_arity transpose_name params l.args;
    let out = ptr_arg transpose_name l.args 0 in
    let input = ptr_arg transpose_name l.args 1 in
    let rows = i32_arg transpose_name l.args 2 in
    let cols = i32_arg transpose_name l.args 3 in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        Memory.set_f32 mem
          (out + (4 * ((j * rows) + i)))
          (Memory.get_f32 mem (input + (4 * ((i * cols) + j))))
      done
    done
  in
  let cost d l =
    let rows = Float.of_int (i32_arg transpose_name l.args 2) in
    let cols = Float.of_int (i32_arg transpose_name l.args 3) in
    roofline d l ~flops:0.0 ~bytes:(8.0 *. rows *. cols) ~precision:`F32
  in
  { name = transpose_name; params; execute; cost }

let fill_name = "fillKernel"

let fill =
  let params = [ P_ptr; P_f32; P_i32 ] in
  let execute mem l =
    check_arity fill_name params l.args;
    let x = ptr_arg fill_name l.args 0 in
    let v = f32_arg fill_name l.args 1 in
    let n = i32_arg fill_name l.args 2 in
    for i = 0 to n - 1 do
      Memory.set_f32 mem (x + (4 * i)) v
    done
  in
  let cost d l =
    let n = Float.of_int (i32_arg fill_name l.args 2) in
    roofline d l ~flops:0.0 ~bytes:(4.0 *. n) ~precision:`F32
  in
  { name = fill_name; params; execute; cost }

let nbody_name = "nbodyKernel"

let nbody =
  (* all-pairs gravity step over bodies stored as 4 floats (x, y, z, mass)
     with velocities as 4 floats (vx, vy, vz, pad); softened to avoid
     singularities, velocity-then-position Euler update *)
  let params = [ P_ptr; P_ptr; P_f32; P_i32 ] in
  let softening2 = 1e-4 in
  let execute mem l =
    check_arity nbody_name params l.args;
    let pos = ptr_arg nbody_name l.args 0 in
    let vel = ptr_arg nbody_name l.args 1 in
    let dt = f32_arg nbody_name l.args 2 in
    let n = i32_arg nbody_name l.args 3 in
    let px = Array.init n (fun i -> Memory.get_f32 mem (pos + (16 * i))) in
    let py = Array.init n (fun i -> Memory.get_f32 mem (pos + (16 * i) + 4)) in
    let pz = Array.init n (fun i -> Memory.get_f32 mem (pos + (16 * i) + 8)) in
    let m = Array.init n (fun i -> Memory.get_f32 mem (pos + (16 * i) + 12)) in
    for i = 0 to n - 1 do
      let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          let dx = px.(j) -. px.(i)
          and dy = py.(j) -. py.(i)
          and dz = pz.(j) -. pz.(i) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening2 in
          let inv_r3 = 1.0 /. (r2 *. Float.sqrt r2) in
          ax := !ax +. (m.(j) *. dx *. inv_r3);
          ay := !ay +. (m.(j) *. dy *. inv_r3);
          az := !az +. (m.(j) *. dz *. inv_r3)
        end
      done;
      let vbase = vel + (16 * i) in
      Memory.set_f32 mem vbase (Memory.get_f32 mem vbase +. (!ax *. dt));
      Memory.set_f32 mem (vbase + 4)
        (Memory.get_f32 mem (vbase + 4) +. (!ay *. dt));
      Memory.set_f32 mem (vbase + 8)
        (Memory.get_f32 mem (vbase + 8) +. (!az *. dt))
    done;
    for i = 0 to n - 1 do
      let pbase = pos + (16 * i) and vbase = vel + (16 * i) in
      Memory.set_f32 mem pbase
        (Memory.get_f32 mem pbase +. (Memory.get_f32 mem vbase *. dt));
      Memory.set_f32 mem (pbase + 4)
        (Memory.get_f32 mem (pbase + 4)
        +. (Memory.get_f32 mem (vbase + 4) *. dt));
      Memory.set_f32 mem (pbase + 8)
        (Memory.get_f32 mem (pbase + 8)
        +. (Memory.get_f32 mem (vbase + 8) *. dt))
    done
  in
  let cost d l =
    let n = Float.of_int (i32_arg nbody_name l.args 3) in
    (* ~20 flops per pair interaction; positions fit in shared memory *)
    roofline d l ~flops:(20.0 *. n *. n) ~bytes:(32.0 *. n) ~precision:`F32
  in
  { name = nbody_name; params; execute; cost }

let () =
  List.iter register
    [
      matrix_mul; histogram256; merge_histogram256; vector_add; saxpy;
      reduce_sum; transpose; fill; nbody;
    ]
