lib/gpusim/gpu.ml: Device Hashtbl Int64 Kernels Memory Simnet
