lib/gpusim/kernels.mli: Device Memory
