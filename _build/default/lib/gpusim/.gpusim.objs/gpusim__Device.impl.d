lib/gpusim/device.ml: Format Int64
