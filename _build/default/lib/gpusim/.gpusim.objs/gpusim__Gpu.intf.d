lib/gpusim/gpu.mli: Device Kernels Memory Simnet
