lib/gpusim/memory.mli:
