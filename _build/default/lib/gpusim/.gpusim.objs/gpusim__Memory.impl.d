lib/gpusim/memory.ml: Bytes Char Int Int32 Int64 List Map Marshal Printexc Printf String
