lib/gpusim/kernels.ml: Array Device Float Format Hashtbl Int32 List Memory Printexc
