module Time = Simnet.Time

type t = {
  device : Device.t;
  mutable memory : Memory.t;
  streams : (int, Time.t ref) Hashtbl.t;
  events : (int, Time.t option ref) Hashtbl.t;
  mutable next_handle : int;
}

let default_stream = 0
let default_capacity_clamp = 2 lsl 30

let create ?memory_capacity device =
  let capacity =
    match memory_capacity with
    | Some c -> c
    | None ->
        let mem = device.Device.total_global_mem in
        if Int64.compare mem (Int64.of_int default_capacity_clamp) > 0 then
          default_capacity_clamp
        else Int64.to_int mem
  in
  let t =
    {
      device;
      memory = Memory.create ~capacity;
      streams = Hashtbl.create 8;
      events = Hashtbl.create 8;
      next_handle = 1;
    }
  in
  Hashtbl.add t.streams default_stream (ref Time.zero);
  t

let device t = t.device
let memory t = t.memory

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let stream_create t =
  let h = fresh_handle t in
  Hashtbl.add t.streams h (ref Time.zero);
  h

let stream_ref t handle = Hashtbl.find t.streams handle

let stream_destroy t handle =
  if handle = default_stream then invalid_arg "cannot destroy default stream";
  if not (Hashtbl.mem t.streams handle) then raise Not_found;
  Hashtbl.remove t.streams handle

let stream_valid t handle = Hashtbl.mem t.streams handle
let stream_completion t handle = !(stream_ref t handle)

let stream_synchronize t ~now handle =
  let completion = stream_completion t handle in
  if Time.compare completion now > 0 then completion else now

let launch t ~now ?(stream = default_stream) kernel launch_params =
  let sref = stream_ref t stream in
  let start = if Time.compare !sref now > 0 then !sref else now in
  let cost_ns = kernel.Kernels.cost t.device launch_params in
  let completion =
    Time.add start
      (Time.add
         (Time.ns t.device.Device.launch_overhead_ns)
         (Time.of_float_ns cost_ns))
  in
  kernel.Kernels.execute t.memory launch_params;
  sref := completion;
  completion

let synchronize t ~now =
  Hashtbl.fold
    (fun _ sref acc -> if Time.compare !sref acc > 0 then !sref else acc)
    t.streams now

let event_create t =
  let h = fresh_handle t in
  Hashtbl.add t.events h (ref None);
  h

let event_destroy t handle =
  if not (Hashtbl.mem t.events handle) then raise Not_found;
  Hashtbl.remove t.events handle

let event_valid t handle = Hashtbl.mem t.events handle

let event_record t ~now ~event ~stream =
  let eref = Hashtbl.find t.events event in
  let completion = stream_synchronize t ~now stream in
  eref := Some completion

let event_synchronize t ~now handle =
  match !(Hashtbl.find t.events handle) with
  | Some when_ -> if Time.compare when_ now > 0 then when_ else now
  | None -> now

let event_elapsed_ms t ~start ~stop =
  match (!(Hashtbl.find t.events start), !(Hashtbl.find t.events stop)) with
  | Some a, Some b -> Time.to_float_ms (Time.sub b a)
  | _ -> raise Not_found

let reset t =
  Memory.reset t.memory;
  Hashtbl.reset t.streams;
  Hashtbl.reset t.events;
  Hashtbl.add t.streams default_stream (ref Time.zero);
  t.next_handle <- 1

let set_memory t m = t.memory <- m
