type t = {
  name : string;
  multi_processor_count : int;
  clock_rate_khz : int;
  total_global_mem : int64;
  memory_bandwidth : float;
  pcie_bandwidth : float;
  fp32_tflops : float;
  fp64_tflops : float;
  efficiency : float;
  compute_major : int;
  compute_minor : int;
  launch_overhead_ns : int;
}

let gib n = Int64.mul (Int64.of_int n) (Int64.shift_left 1L 30)

let a100 =
  {
    name = "NVIDIA A100-PCIE-40GB";
    multi_processor_count = 108;
    clock_rate_khz = 1_410_000;
    total_global_mem = gib 40;
    memory_bandwidth = 1.555e12;
    pcie_bandwidth = 2.2e10;
    fp32_tflops = 19.5;
    fp64_tflops = 9.7;
    efficiency = 0.45;
    compute_major = 8;
    compute_minor = 0;
    launch_overhead_ns = 2_200;
  }

let t4 =
  {
    name = "NVIDIA Tesla T4";
    multi_processor_count = 40;
    clock_rate_khz = 1_590_000;
    total_global_mem = gib 16;
    memory_bandwidth = 3.2e11;
    pcie_bandwidth = 1.2e10;
    fp32_tflops = 8.1;
    fp64_tflops = 0.25;
    efficiency = 0.40;
    compute_major = 7;
    compute_minor = 5;
    launch_overhead_ns = 2_600;
  }

let p40 =
  {
    name = "NVIDIA Tesla P40";
    multi_processor_count = 30;
    clock_rate_khz = 1_531_000;
    total_global_mem = gib 24;
    memory_bandwidth = 3.46e11;
    pcie_bandwidth = 1.2e10;
    fp32_tflops = 11.8;
    fp64_tflops = 0.37;
    efficiency = 0.35;
    compute_major = 6;
    compute_minor = 1;
    launch_overhead_ns = 3_000;
  }

let gpu_node = [ a100; t4; t4; p40 ]

let effective_flops t precision =
  let peak =
    match precision with `F32 -> t.fp32_tflops | `F64 -> t.fp64_tflops
  in
  peak *. 1e12 *. t.efficiency

let pp ppf t =
  Format.fprintf ppf "%s (%d SMs @ %d kHz, %Ld B, CC %d.%d)" t.name
    t.multi_processor_count t.clock_rate_khz t.total_global_mem
    t.compute_major t.compute_minor
