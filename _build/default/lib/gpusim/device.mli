(** GPU device profiles.

    Static hardware descriptions used for CUDA device properties and for
    the kernel timing model. The catalog mirrors the evaluation testbed's
    GPU node: one A100, two T4s, one P40 (the paper's measurements use the
    A100). Throughput numbers are datasheet values derated by an efficiency
    factor representing what well-tuned sample kernels sustain (tiled
    SGEMM reaches roughly half of peak on these parts). *)

type t = {
  name : string;
  multi_processor_count : int;
  clock_rate_khz : int;
  total_global_mem : int64;  (** bytes *)
  memory_bandwidth : float;  (** bytes/s *)
  pcie_bandwidth : float;  (** bytes/s, host<->device staging *)
  fp32_tflops : float;
  fp64_tflops : float;
  efficiency : float;  (** fraction of peak sustained by small kernels *)
  compute_major : int;
  compute_minor : int;
  launch_overhead_ns : int;  (** device-side cost to start one grid *)
}

val a100 : t
val t4 : t
val p40 : t

val gpu_node : t list
(** The evaluation machine's GPUs in device-index order:
    [A100; T4; T4; P40]. *)

val effective_flops : t -> [ `F32 | `F64 ] -> float
(** Sustained FLOP/s after derating. *)

val pp : Format.formatter -> t -> unit
