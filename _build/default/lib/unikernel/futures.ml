let with_tso (cfg : Config.t) =
  let p = cfg.Config.profile in
  {
    cfg with
    Config.name = cfg.Config.name ^ "+tso";
    profile =
      {
        p with
        Simnet.Hostprofile.offloads =
          { p.Simnet.Hostprofile.offloads with Simnet.Offload.tso = true;
            gro = true };
        (* the per-super-frame cost replaces per-segment processing; the
           stack's cost per processed unit stays, but units shrink 7x *)
        per_packet_tx_ns = p.Simnet.Hostprofile.per_packet_tx_ns;
        per_packet_rx_ns = p.Simnet.Hostprofile.per_packet_rx_ns;
      };
  }

let with_vdpa (cfg : Config.t) =
  let p = cfg.Config.profile in
  {
    cfg with
    Config.name = cfg.Config.name ^ "+vdpa";
    profile =
      {
        p with
        (* data-path kicks and interrupt injection no longer trap *)
        Simnet.Hostprofile.vmexit_ns = 0;
        virtualized = false;
      };
  }

let with_tso_and_vdpa cfg =
  let c = with_vdpa (with_tso cfg) in
  { c with Config.name = cfg.Config.name ^ "+tso+vdpa" }

let variants cfg =
  [
    ("baseline", cfg);
    ("+tso", with_tso cfg);
    ("+vdpa", with_vdpa cfg);
    ("+tso+vdpa", with_tso_and_vdpa cfg);
  ]
