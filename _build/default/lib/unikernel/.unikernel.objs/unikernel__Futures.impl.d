lib/unikernel/futures.ml: Config Simnet
