lib/unikernel/runner.ml: Config Cricket Cudasim Float Format Simchannel Simnet
