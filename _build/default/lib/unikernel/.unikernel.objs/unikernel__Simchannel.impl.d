lib/unikernel/simchannel.ml: Buffer Config List Oncrpc Simnet String
