lib/unikernel/multitenant.ml: Config Cricket Cudasim Format List Simchannel Simnet
