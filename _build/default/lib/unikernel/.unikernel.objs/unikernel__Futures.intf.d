lib/unikernel/futures.mli: Config
