lib/unikernel/multitenant.mli: Config Cricket Format Gpusim Simnet
