lib/unikernel/simchannel.mli: Oncrpc Simnet
