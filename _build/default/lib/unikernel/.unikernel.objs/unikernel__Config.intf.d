lib/unikernel/config.mli: Simnet
