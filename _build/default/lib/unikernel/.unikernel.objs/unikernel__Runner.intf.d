lib/unikernel/runner.mli: Config Cricket Format Gpusim Simnet
