lib/unikernel/config.ml: List Printf Simnet String
