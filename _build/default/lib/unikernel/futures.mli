(** Projections of the paper's proposed improvements (§4.2 / §5).

    The conclusion names two directions for closing the unikernel
    bandwidth gap, both modelled here so the ablation benchmark can
    quantify the projected effect:

    - {b TSO}: "for both RustyHermit and Unikraft, there are ongoing
      efforts to support TCP segmentation offloading, which we expect to
      increase performance significantly" — {!with_tso} turns the feature
      on in a configuration's offload set (and amortizes the per-segment
      stack cost over 64 KiB super-frames, which is what TSO does);
    - {b vDPA}: "removes the virtualization overhead from the data path by
      allowing direct access to hardware queues for VMs and unikernels" —
      {!with_vdpa} eliminates VM exits on kicks/interrupts (the data path
      no longer traps to the hypervisor) while keeping the guest stack's
      own costs. *)

val with_tso : Config.t -> Config.t
(** Same configuration with TSO (and GRO, its receive-side dual that the
    host can then provide) negotiated. *)

val with_vdpa : Config.t -> Config.t
(** Same configuration with direct hardware-queue access: kicks and
    interrupts stop costing VM exits. *)

val with_tso_and_vdpa : Config.t -> Config.t

val variants : Config.t -> (string * Config.t) list
(** [baseline; +tso; +vdpa; +tso+vdpa], labelled. *)
