module Time = Simnet.Time
module Engine = Simnet.Engine

type step = Cricket.Client.t -> unit

type tenant_spec = {
  name : string;
  config : Config.t;
  priority : int;
  work : step list;
}

type tenant_report = {
  tenant : string;
  steps : int;
  api_calls : int;
  finished_at : Simnet.Time.t;
}

type report = {
  policy : Cricket.Sched.policy;
  tenants : tenant_report list;
  makespan : Simnet.Time.t;
}

type tenant_state = {
  spec : tenant_spec;
  client : Cricket.Client.t;
  mutable remaining : step list;
  mutable steps_done : int;
  mutable finished_at : Time.t option;
  mutable last_turn : int;  (* round-robin bookkeeping *)
}

let run ?(policy = Cricket.Sched.Round_robin) ?devices ?memory_capacity
    ?(functional = true) specs =
  if specs = [] then invalid_arg "Multitenant.run: no tenants";
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ?devices ?memory_capacity
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) functional;
  let tenants =
    List.map
      (fun spec ->
        let channel =
          Simchannel.create ~engine ~client:spec.config.Config.profile
            ~dispatch:(Cricket.Server.dispatch server)
            ()
        in
        let client =
          Cricket.Client.create
            ~launch_extra_ns:spec.config.Config.launch_extra_ns
            ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
            ~transport:(Simchannel.transport channel)
            ()
        in
        { spec; client; remaining = spec.work; steps_done = 0;
          finished_at = None; last_turn = -1 })
      specs
  in
  (* pick the next tenant with work, per policy *)
  let turn = ref 0 in
  let next_tenant () =
    let active = List.filter (fun t -> t.remaining <> []) tenants in
    match active with
    | [] -> None
    | _ ->
        Some
          (match policy with
          | Cricket.Sched.Fifo -> List.hd active
          | Cricket.Sched.Priority ->
              List.hd
                (List.stable_sort
                   (fun a b -> compare a.spec.priority b.spec.priority)
                   active)
          | Cricket.Sched.Round_robin ->
              List.hd
                (List.stable_sort
                   (fun a b -> compare a.last_turn b.last_turn)
                   active))
  in
  let rec drive () =
    match next_tenant () with
    | None -> ()
    | Some t ->
        (match t.remaining with
        | step :: rest ->
            step t.client;
            t.steps_done <- t.steps_done + 1;
            t.remaining <- rest;
            t.last_turn <- !turn;
            incr turn;
            if rest = [] then t.finished_at <- Some (Engine.now engine)
        | [] -> ());
        drive ()
  in
  drive ();
  let reports =
    List.map
      (fun t ->
        {
          tenant = t.spec.name;
          steps = t.steps_done;
          api_calls = Cricket.Client.api_calls t.client;
          finished_at =
            (match t.finished_at with Some x -> x | None -> Engine.now engine);
        })
      tenants
  in
  {
    policy;
    tenants = reports;
    makespan = Engine.now engine;
  }

let pp_report ppf r =
  Format.fprintf ppf "policy %s, makespan %a@."
    (Cricket.Sched.policy_to_string r.policy)
    Time.pp r.makespan;
  List.iter
    (fun t ->
      Format.fprintf ppf "  %-12s %4d steps %6d calls  finished at %a@."
        t.tenant t.steps t.api_calls Time.pp t.finished_at)
    r.tenants
