(** The five evaluated host configurations (Table 1 of the paper).

    | Name     | app  | OS          | Hypervisor | Network |
    |----------|------|-------------|------------|---------|
    | C        | C    | Rocky Linux | —          | native  |
    | Rust     | Rust | Rocky Linux | —          | native  |
    | Linux VM | Rust | Fedora VM   | QEMU       | virtio  |
    | Unikraft | Rust | Unikraft    | QEMU       | virtio  |
    | Hermit   | Rust | Hermit      | QEMU       | virtio  |

    Each configuration bundles the client-side network cost profile (the
    server always runs natively on the GPU node) and the
    language-runtime parameters that explain the paper's C-vs-Rust deltas:
    the C samples use a slower [rand()] for input generation, and the C
    launch path runs extra [<<<...>>>] compatibility logic. *)

type lang = C | Rust

type os = Rocky_native | Fedora_vm | Unikraft_os | Hermit_os

type t = {
  name : string;
  lang : lang;
  os : os;
  hypervisor : string option;
  network : string;  (** Table 1's network column *)
  profile : Simnet.Hostprofile.t;  (** client-side cost profile *)
  rng_ns_per_byte : float;  (** input-data generation cost *)
  launch_extra_ns : int;  (** per-launch client-side extra work *)
}

val c_native : t
val rust_native : t
val linux_vm : t
val unikraft : t
val hermit : t

val all : t list
(** Table 1 order: C, Rust, Linux VM, Unikraft, Hermit. *)

val is_unikernel : t -> bool
val find : string -> t option
(** Case-insensitive lookup by name. *)

val server_profile : Simnet.Hostprofile.t
(** The GPU node (always native Rocky Linux). *)

val link : Simnet.Link.t
(** The testbed interconnect: 100 GbE, MTU 9000. *)

val table1_rows : unit -> string list
(** Formatted rows reproducing Table 1. *)
