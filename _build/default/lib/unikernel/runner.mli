(** Application runner: executes a Cricket GPU application inside a
    simulated host configuration and measures it the way the paper does
    (GNU [time] around the whole process, including initialization).

    For each run a fresh virtual clock, Cricket server (native GPU node)
    and client (with the configuration's network profile and language
    runtime parameters) are created. The measurement is the virtual time
    between process start and the app function returning. *)

type measurement = {
  config : Config.t;
  elapsed : Simnet.Time.t;  (** total virtual wall time (GNU time style) *)
  api_calls : int;  (** CUDA API calls the client issued *)
  bytes_to_server : int;  (** RPC argument payload bytes *)
  bytes_from_server : int;
  memcpy_up : int;  (** cudaMemcpy H2D payload — the paper's transfer metric *)
  memcpy_down : int;
  network_time : Simnet.Time.t;  (** time attributable to the channel *)
}

type env = {
  client : Cricket.Client.t;
  engine : Simnet.Engine.t;
  cfg : Config.t;
  server : Cricket.Server.t;
}

val run :
  ?devices:Gpusim.Device.t list ->
  ?memory_capacity:int ->
  ?functional:bool ->
  Config.t ->
  (env -> unit) ->
  measurement
(** [functional] (default [true]) controls whether kernels mutate device
    memory; see {!Cudasim.Context.set_functional}. *)

val charge_rng : env -> int -> unit
(** Account generation of [n] input bytes at the configuration's RNG
    cost — how the C/Rust initialization difference enters benchmarks. *)

val pp_measurement : Format.formatter -> measurement -> unit
