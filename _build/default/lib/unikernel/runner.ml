module Time = Simnet.Time
module Engine = Simnet.Engine

type measurement = {
  config : Config.t;
  elapsed : Simnet.Time.t;
  api_calls : int;
  bytes_to_server : int;
  bytes_from_server : int;
  memcpy_up : int;
  memcpy_down : int;
  network_time : Simnet.Time.t;
}

type env = {
  client : Cricket.Client.t;
  engine : Simnet.Engine.t;
  cfg : Config.t;
  server : Cricket.Server.t;
}

let run ?devices ?memory_capacity ?(functional = true) (cfg : Config.t) app =
  let engine = Engine.create () in
  let server =
    Cricket.Server.create ?devices ?memory_capacity
      ~clock:(Cudasim.Context.engine_clock engine)
      ()
  in
  Cudasim.Context.set_functional (Cricket.Server.context server) functional;
  let channel =
    Simchannel.create ~engine ~client:cfg.Config.profile
      ~dispatch:(Cricket.Server.dispatch server)
      ()
  in
  let client =
    Cricket.Client.create ~launch_extra_ns:cfg.Config.launch_extra_ns
      ~charge:(fun ns -> Engine.advance engine (Time.ns ns))
      ~transport:(Simchannel.transport channel)
      ()
  in
  let t0 = Engine.now engine in
  (* process startup: load, connect to the Cricket server (TCP handshake) *)
  Engine.advance engine (Time.us 150);
  let env = { client; engine; cfg; server } in
  app env;
  let elapsed = Time.sub (Engine.now engine) t0 in
  let stats = Simchannel.stats channel in
  {
    config = cfg;
    elapsed;
    api_calls = Cricket.Client.api_calls client;
    bytes_to_server = Cricket.Client.bytes_to_server client;
    bytes_from_server = Cricket.Client.bytes_from_server client;
    memcpy_up = Cricket.Client.memcpy_bytes_up client;
    memcpy_down = Cricket.Client.memcpy_bytes_down client;
    network_time = stats.Simchannel.network_time;
  }

let charge_rng env n =
  let ns = Float.of_int n *. env.cfg.Config.rng_ns_per_byte in
  Engine.advance env.engine (Time.of_float_ns ns)

let pp_measurement ppf m =
  Format.fprintf ppf "%-9s %a (%d API calls, %.2f MiB up, %.2f MiB down)"
    m.config.Config.name Time.pp m.elapsed m.api_calls
    (Float.of_int m.bytes_to_server /. 1048576.0)
    (Float.of_int m.bytes_from_server /. 1048576.0)
