(** Virtual-time RPC channel between a simulated client host and the GPU
    node.

    Implements {!Oncrpc.Transport.t} for the benchmark harness: the client
    writes record-marked request bytes; when it reads, the channel charges
    the {!Simnet.Netcost} one-way time for the request (client profile →
    server profile), dispatches the record to the Cricket server (whose
    CUDA-side costs advance the same clock through the context's clock
    hooks), charges the reply's one-way time, and hands the reply bytes
    back. Wall-clock-free: all time is the engine's virtual clock. *)

type stats = {
  messages : int;  (** request/reply pairs *)
  bytes_to_server : int;  (** wire bytes, requests *)
  bytes_from_server : int;
  network_time : Simnet.Time.t;  (** virtual time spent in the channel *)
}

type t

val create :
  engine:Simnet.Engine.t ->
  client:Simnet.Hostprofile.t ->
  ?server:Simnet.Hostprofile.t ->
  ?link:Simnet.Link.t ->
  dispatch:(string -> string) ->
  unit ->
  t
(** [server] defaults to {!Config.server_profile}, [link] to
    {!Config.link}. *)

val transport : t -> Oncrpc.Transport.t
val stats : t -> stats
