(** Shared error type for XDR (RFC 4506) encoding and decoding.

    XDR is a strict, big-endian, 4-byte-aligned serialization format. All
    failures raised by {!Encode} and {!Decode} carry an {!error} describing
    exactly what went wrong, so RPC layers can map them to protocol-level
    replies (e.g. [GARBAGE_ARGS]). *)

type error =
  | Truncated of { wanted : int; available : int }
      (** The decoder needed [wanted] more bytes but only [available]
          remained. *)
  | Size_exceeded of { limit : int; requested : int }
      (** A variable-length item declared a size above its protocol limit. *)
  | Invalid_bool of int32  (** A boolean field held a value other than 0/1. *)
  | Invalid_enum of int32  (** An enum field held an unknown discriminant. *)
  | Invalid_union of int32
      (** A union discriminant did not match any declared arm. *)
  | Invalid_padding
      (** Alignment padding bytes were non-zero (RFC 4506 requires zero). *)
  | Trailing_bytes of int
      (** [finish] found this many undecoded bytes after the last item. *)
  | Invalid_utf8 (** A string field failed an (optional) UTF-8 check. *)
  | Negative_size of int
      (** A length or count field decoded to a negative value. *)

exception Error of error

val error_to_string : error -> string
(** Human-readable rendering of an {!error}. *)

val pp_error : Format.formatter -> error -> unit
(** Pretty-printer for {!error}, suitable for [Fmt]/[Alcotest]. *)

val fail : error -> 'a
(** [fail e] raises {!Error}[ e]. *)

val padding_of : int -> int
(** [padding_of n] is the number of zero bytes (0–3) required to pad an
    [n]-byte item to the next 4-byte boundary. *)
