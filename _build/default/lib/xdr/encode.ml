type t = { buf : Buffer.t }

let create ?(initial_size = 256) () = { buf = Buffer.create initial_size }
let length t = Buffer.length t.buf
let to_bytes t = Buffer.to_bytes t.buf
let to_string t = Buffer.contents t.buf
let reset t = Buffer.clear t.buf

let int32 t v =
  Buffer.add_char t.buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Buffer.add_char t.buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Buffer.add_char t.buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Buffer.add_char t.buf (Char.chr (Int32.to_int v land 0xff))

let uint32 = int32

let int t v =
  if v > 0x7fffffff || v < -0x80000000 then
    Types.fail (Types.Size_exceeded { limit = 0x7fffffff; requested = v });
  int32 t (Int32.of_int v)

let uint t v =
  if v < 0 then Types.fail (Types.Negative_size v);
  if v > 0xffffffff then
    Types.fail (Types.Size_exceeded { limit = 0xffffffff; requested = v });
  int32 t (Int32.of_int v)

let int64 t v =
  int32 t (Int64.to_int32 (Int64.shift_right_logical v 32));
  int32 t (Int64.to_int32 v)

let uint64 = int64
let bool t b = int32 t (if b then 1l else 0l)
let float32 t f = int32 t (Int32.bits_of_float f)
let float64 t f = int64 t (Int64.bits_of_float f)
let enum t v = int t v
let void (_ : t) = ()

let pad t n =
  for _ = 1 to Types.padding_of n do
    Buffer.add_char t.buf '\000'
  done

let opaque_fixed t b =
  Buffer.add_bytes t.buf b;
  pad t (Bytes.length b)

let check_max ?max len =
  match max with
  | Some m when len > m -> Types.fail (Types.Size_exceeded { limit = m; requested = len })
  | _ -> ()

let opaque_sub ?max t b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Xdr.Encode.opaque_sub";
  check_max ?max len;
  uint t len;
  Buffer.add_subbytes t.buf b off len;
  pad t len

let opaque ?max t b = opaque_sub ?max t b 0 (Bytes.length b)

let string ?max t s =
  let len = String.length s in
  check_max ?max len;
  uint t len;
  Buffer.add_string t.buf s;
  pad t len

let array_fixed t enc a = Array.iter (fun x -> enc t x) a

let array ?max t enc a =
  let len = Array.length a in
  check_max ?max len;
  uint t len;
  array_fixed t enc a

let list ?max t enc l =
  let len = List.length l in
  check_max ?max len;
  uint t len;
  List.iter (fun x -> enc t x) l

let option t enc = function
  | None -> bool t false
  | Some v ->
      bool t true;
      enc t v
