lib/xdr/decode.mli:
