lib/xdr/decode.ml: Array Bytes Char Int32 Int64 List String Types
