lib/xdr/types.mli: Format
