lib/xdr/types.ml: Format Printexc Printf
