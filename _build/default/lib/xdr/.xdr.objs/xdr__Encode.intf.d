lib/xdr/encode.mli:
