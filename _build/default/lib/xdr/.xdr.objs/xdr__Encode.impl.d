lib/xdr/encode.ml: Array Buffer Bytes Char Int32 Int64 List String Types
