type error =
  | Truncated of { wanted : int; available : int }
  | Size_exceeded of { limit : int; requested : int }
  | Invalid_bool of int32
  | Invalid_enum of int32
  | Invalid_union of int32
  | Invalid_padding
  | Trailing_bytes of int
  | Invalid_utf8
  | Negative_size of int

exception Error of error

let error_to_string = function
  | Truncated { wanted; available } ->
      Printf.sprintf "truncated input: wanted %d bytes, %d available" wanted
        available
  | Size_exceeded { limit; requested } ->
      Printf.sprintf "size limit exceeded: requested %d, limit %d" requested
        limit
  | Invalid_bool v -> Printf.sprintf "invalid boolean value %ld" v
  | Invalid_enum v -> Printf.sprintf "invalid enum discriminant %ld" v
  | Invalid_union v -> Printf.sprintf "invalid union discriminant %ld" v
  | Invalid_padding -> "non-zero padding bytes"
  | Trailing_bytes n -> Printf.sprintf "%d trailing bytes after decode" n
  | Invalid_utf8 -> "string is not valid UTF-8"
  | Negative_size n -> Printf.sprintf "negative size %d" n

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)
let fail e = raise (Error e)

let padding_of n =
  match n land 3 with 0 -> 0 | r -> 4 - r

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Xdr.Types.Error: %s" (error_to_string e))
    | _ -> None)
