let window_size = 4096
let min_match = 3
let max_match = 18

(* Positions of recent 3-byte sequences, for match finding. *)
let hash3 s i =
  (Char.code s.[i] lsl 10) lxor (Char.code s.[i + 1] lsl 5)
  lxor Char.code s.[i + 2]

let compress input =
  let n = String.length input in
  if n = 0 then ""
  else begin
    let out = Buffer.create (n / 2) in
    let chains : (int, int list) Hashtbl.t = Hashtbl.create 4096 in
    let items = Buffer.create 16 in
    let flags = ref 0 in
    let item_count = ref 0 in
    let flush_group () =
      if !item_count > 0 then begin
        Buffer.add_char out (Char.chr !flags);
        Buffer.add_buffer out items;
        Buffer.clear items;
        flags := 0;
        item_count := 0
      end
    in
    let add_literal c =
      Buffer.add_char items c;
      incr item_count;
      if !item_count = 8 then flush_group ()
    in
    let add_match ~distance ~length =
      let token = ((distance - 1) lsl 4) lor (length - min_match) in
      Buffer.add_char items (Char.chr ((token lsr 8) land 0xff));
      Buffer.add_char items (Char.chr (token land 0xff));
      flags := !flags lor (1 lsl !item_count);
      incr item_count;
      if !item_count = 8 then flush_group ()
    in
    let record_position i =
      if i + min_match <= n then begin
        let h = hash3 input i in
        let previous =
          match Hashtbl.find_opt chains h with Some l -> l | None -> []
        in
        (* keep chains short: matching is best-effort *)
        let trimmed =
          match previous with
          | a :: b :: c :: _ -> [ i; a; b; c ]
          | l -> i :: l
        in
        Hashtbl.replace chains h trimmed
      end
    in
    let match_length pos candidate =
      let limit = min max_match (n - pos) in
      let rec extend k =
        if k < limit && input.[candidate + k] = input.[pos + k] then
          extend (k + 1)
        else k
      in
      extend 0
    in
    let find_match pos =
      if pos + min_match > n then None
      else begin
        let h = hash3 input pos in
        let candidates =
          match Hashtbl.find_opt chains h with Some l -> l | None -> []
        in
        List.fold_left
          (fun best candidate ->
            if pos - candidate >= 1 && pos - candidate <= window_size then begin
              let len = match_length pos candidate in
              match best with
              | Some (_, best_len) when best_len >= len -> best
              | _ when len >= min_match -> Some (pos - candidate, len)
              | _ -> best
            end
            else best)
          None candidates
      end
    in
    let i = ref 0 in
    while !i < n do
      (match find_match !i with
      | Some (distance, length) ->
          add_match ~distance ~length;
          for k = !i to !i + length - 1 do
            record_position k
          done;
          i := !i + length
      | None ->
          add_literal input.[!i];
          record_position !i;
          incr i)
    done;
    flush_group ();
    Buffer.contents out
  end

let decompress input =
  let n = String.length input in
  let out = Buffer.create (n * 2) in
  let error msg = Error msg in
  let rec group i =
    if i >= n then Ok (Buffer.contents out)
    else begin
      let flags = Char.code input.[i] in
      items (i + 1) flags 0
    end
  and items i flags k =
    if k = 8 || i >= n then group i
    else if flags land (1 lsl k) <> 0 then begin
      if i + 1 >= n then error "truncated match token"
      else begin
        let token = (Char.code input.[i] lsl 8) lor Char.code input.[i + 1] in
        let distance = (token lsr 4) + 1 in
        let length = (token land 0xf) + min_match in
        let produced = Buffer.length out in
        if distance > produced then error "match before start of output"
        else begin
          (* byte-by-byte copy: matches may overlap their own output *)
          for _ = 1 to length do
            Buffer.add_char out (Buffer.nth out (Buffer.length out - distance))
          done;
          items (i + 2) flags (k + 1)
        end
      end
    end
    else begin
      Buffer.add_char out input.[i];
      items (i + 1) flags (k + 1)
    end
  in
  group 0

let ratio input =
  if String.length input = 0 then 1.0
  else
    Float.of_int (String.length (compress input))
    /. Float.of_int (String.length input)
