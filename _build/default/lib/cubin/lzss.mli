(** LZSS compression for kernel images.

    NVCC can emit compressed cubins; Cricket had to implement a
    decompression routine so the server can still extract kernel metadata
    from them (the paper cites this as the cuda-fatbin-decompression
    work). This module provides the equivalent for our module format: a
    classic LZSS with a 4 KiB sliding window, 3–18-byte matches, and
    flag-byte groups of eight items.

    Wire format: groups of [flag byte + 8 items]; flag bit [i] (LSB first)
    set means item [i] is a 2-byte match token [(distance - 1) << 4 |
    (length - 3)] with distances in [1, 4096]; clear means a literal
    byte. *)

val compress : string -> string
val decompress : string -> (string, string) result
(** [Error] on truncated or malformed input (e.g. a match reaching before
    the start of the output). *)

val ratio : string -> float
(** [compressed_size / original_size] (1.0 for empty input). *)
