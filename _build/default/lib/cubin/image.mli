(** The cubin-analogue kernel module container.

    An image carries exactly the metadata Cricket must extract server-side
    to launch kernels sent by remote clients: kernel names, parameter
    layouts (so packed parameter buffers can be deserialized), launch
    bounds, and global variables. The payload may be LZSS-compressed; the
    parser transparently decompresses, mirroring Cricket's
    compressed-cubin support.

    Binary layout (little-endian):
    {v
    "CBIN"  magic
    u16     format version (1)
    u16     flags (bit 0: payload compressed)
    u32     payload length
    payload:
      u16 arch_major, u16 arch_minor
      u32 kernel count, then per kernel:
        str name | u8 param count | param type codes | u32 max_threads
      u32 global count, then per global:
        str name | u32 size | u8 has_init | init bytes
      u32 code length | code bytes
    v}
    where [str] is a u16 length + bytes. *)

type kernel_info = {
  name : string;
  params : Gpusim.Kernels.param list;
  max_threads_per_block : int;
}

type global_info = { name : string; size : int; init : bytes option }

type t = {
  arch : int * int;  (** compute capability *)
  kernels : kernel_info list;
  globals : global_info list;
  code : bytes;  (** opaque "SASS" payload *)
}

val build : ?compress:bool -> t -> string
(** Serialize (compressed by default: NVCC ≥ 11 compresses by default). *)

val parse : string -> (t, string) result
val is_compressed : string -> bool
(** Peek at the header flag without parsing; false for malformed input. *)

val of_registry : ?arch:int * int -> string list -> t
(** Build an image for named kernels, taking parameter metadata from the
    {!Gpusim.Kernels} registry and synthesizing a code section. Raises
    [Not_found] for an unregistered kernel name. *)

val find_kernel : t -> string -> kernel_info option

val param_buffer_size : kernel_info -> int
(** Bytes of the packed (naturally aligned) launch-parameter buffer. *)

val pack_args : kernel_info -> Gpusim.Kernels.arg array -> (bytes, string) result
(** Client side: serialize launch arguments into the packed buffer laid out
    per the kernel's parameter metadata (natural alignment, little-endian —
    the layout [cuLaunchKernel] expects). [Error] on arity or type
    mismatch. *)

val unpack_args : kernel_info -> bytes -> (Gpusim.Kernels.arg array, string) result
(** Server side: recover typed arguments from the packed buffer — the
    metadata-driven deserialization Cricket performs before launching. *)
