type kernel_info = {
  name : string;
  params : Gpusim.Kernels.param list;
  max_threads_per_block : int;
}

type global_info = { name : string; size : int; init : bytes option }

type t = {
  arch : int * int;
  kernels : kernel_info list;
  globals : global_info list;
  code : bytes;
}

let magic = "CBIN"
let format_version = 1
let flag_compressed = 0x0001

let param_code = function
  | Gpusim.Kernels.P_i32 -> 0
  | Gpusim.Kernels.P_i64 -> 1
  | Gpusim.Kernels.P_f32 -> 2
  | Gpusim.Kernels.P_f64 -> 3
  | Gpusim.Kernels.P_ptr -> 4

let param_of_code = function
  | 0 -> Some Gpusim.Kernels.P_i32
  | 1 -> Some Gpusim.Kernels.P_i64
  | 2 -> Some Gpusim.Kernels.P_f32
  | 3 -> Some Gpusim.Kernels.P_f64
  | 4 -> Some Gpusim.Kernels.P_ptr
  | _ -> None

(* --- little-endian writer --- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u16 buf v =
  w_u8 buf v;
  w_u8 buf (v lsr 8)

let w_u32 buf v =
  w_u16 buf (v land 0xffff);
  w_u16 buf ((v lsr 16) land 0xffff)

let w_str buf s =
  if String.length s > 0xffff then invalid_arg "Cubin.Image: string too long";
  w_u16 buf (String.length s);
  Buffer.add_string buf s

(* --- little-endian reader --- *)

exception Malformed of string

let r_u8 s pos =
  if !pos >= String.length s then raise (Malformed "truncated");
  let v = Char.code s.[!pos] in
  incr pos;
  v

let r_u16 s pos =
  let lo = r_u8 s pos in
  let hi = r_u8 s pos in
  lo lor (hi lsl 8)

let r_u32 s pos =
  let lo = r_u16 s pos in
  let hi = r_u16 s pos in
  lo lor (hi lsl 16)

let r_bytes s pos n =
  if n < 0 || !pos + n > String.length s then raise (Malformed "truncated");
  let b = String.sub s !pos n in
  pos := !pos + n;
  b

let r_str s pos =
  let n = r_u16 s pos in
  r_bytes s pos n

let build_payload t =
  let buf = Buffer.create 1024 in
  let major, minor = t.arch in
  w_u16 buf major;
  w_u16 buf minor;
  w_u32 buf (List.length t.kernels);
  List.iter
    (fun (k : kernel_info) ->
      w_str buf k.name;
      w_u8 buf (List.length k.params);
      List.iter (fun p -> w_u8 buf (param_code p)) k.params;
      w_u32 buf k.max_threads_per_block)
    t.kernels;
  w_u32 buf (List.length t.globals);
  List.iter
    (fun (g : global_info) ->
      w_str buf g.name;
      w_u32 buf g.size;
      match g.init with
      | None -> w_u8 buf 0
      | Some init ->
          w_u8 buf 1;
          w_u32 buf (Bytes.length init);
          Buffer.add_bytes buf init)
    t.globals;
  w_u32 buf (Bytes.length t.code);
  Buffer.add_bytes buf t.code;
  Buffer.contents buf

let build ?(compress = true) t =
  let payload = build_payload t in
  let payload, flags =
    if compress then (Lzss.compress payload, flag_compressed) else (payload, 0)
  in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  w_u16 buf format_version;
  w_u16 buf flags;
  w_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let parse_payload payload =
  let pos = ref 0 in
  let major = r_u16 payload pos in
  let minor = r_u16 payload pos in
  let kernel_count = r_u32 payload pos in
  let kernels =
    List.init kernel_count (fun _ ->
        let name = r_str payload pos in
        let param_count = r_u8 payload pos in
        let params =
          List.init param_count (fun _ ->
              match param_of_code (r_u8 payload pos) with
              | Some p -> p
              | None -> raise (Malformed "unknown parameter type"))
        in
        let max_threads_per_block = r_u32 payload pos in
        { name; params; max_threads_per_block })
  in
  let global_count = r_u32 payload pos in
  let globals =
    List.init global_count (fun _ ->
        let name = r_str payload pos in
        let size = r_u32 payload pos in
        let init =
          match r_u8 payload pos with
          | 0 -> None
          | _ ->
              let len = r_u32 payload pos in
              Some (Bytes.of_string (r_bytes payload pos len))
        in
        { name; size; init })
  in
  let code_len = r_u32 payload pos in
  let code = Bytes.of_string (r_bytes payload pos code_len) in
  if !pos <> String.length payload then raise (Malformed "trailing bytes");
  { arch = (major, minor); kernels; globals; code }

let parse s =
  try
    let pos = ref 0 in
    let m = r_bytes s pos 4 in
    if m <> magic then Error "bad magic"
    else begin
      let version = r_u16 s pos in
      if version <> format_version then
        Error (Printf.sprintf "unsupported version %d" version)
      else begin
        let flags = r_u16 s pos in
        let len = r_u32 s pos in
        let payload = r_bytes s pos len in
        if !pos <> String.length s then Error "trailing bytes after payload"
        else begin
          let payload =
            if flags land flag_compressed <> 0 then
              match Lzss.decompress payload with
              | Ok p -> p
              | Error e -> raise (Malformed ("decompression failed: " ^ e))
            else payload
          in
          Ok (parse_payload payload)
        end
      end
    end
  with Malformed msg -> Error msg

let is_compressed s =
  String.length s >= 8
  && String.sub s 0 4 = magic
  && Char.code s.[6] land flag_compressed <> 0

let of_registry ?(arch = (8, 0)) names =
  let kernels =
    List.map
      (fun name ->
        match Gpusim.Kernels.find name with
        | Some k ->
            { name; params = k.Gpusim.Kernels.params;
              max_threads_per_block = 1024 }
        | None -> raise Not_found)
      names
  in
  (* A synthetic "SASS" section: repetitive enough to exercise
     compression the way real device code does. *)
  let code =
    Bytes.of_string
      (String.concat ""
         (List.concat_map
            (fun (k : kernel_info) ->
              List.init 32 (fun i -> Printf.sprintf "%s:%04x;" k.name i))
            kernels))
  in
  { arch; kernels; globals = []; code }

let find_kernel t name =
  List.find_opt (fun (k : kernel_info) -> k.name = name) t.kernels

let align offset size = (offset + size - 1) / size * size

let param_buffer_size info =
  List.fold_left
    (fun offset p ->
      let size = Gpusim.Kernels.param_size p in
      align offset size + size)
    0 info.params

let pack_args info args =
  if Array.length args <> List.length info.params then
    Error
      (Printf.sprintf "%s: expected %d args, got %d" info.name
         (List.length info.params) (Array.length args))
  else begin
    let buf = Bytes.make (param_buffer_size info) '\000' in
    let exception Mismatch of string in
    try
      let _ =
        List.fold_left
          (fun (i, offset) p ->
            let size = Gpusim.Kernels.param_size p in
            let offset = align offset size in
            (match (p, args.(i)) with
            | Gpusim.Kernels.P_i32, Gpusim.Kernels.I32 v ->
                Bytes.set_int32_le buf offset v
            | Gpusim.Kernels.P_f32, Gpusim.Kernels.F32 v ->
                Bytes.set_int32_le buf offset (Int32.bits_of_float v)
            | Gpusim.Kernels.P_i64, Gpusim.Kernels.I64 v ->
                Bytes.set_int64_le buf offset v
            | Gpusim.Kernels.P_f64, Gpusim.Kernels.F64 v ->
                Bytes.set_int64_le buf offset (Int64.bits_of_float v)
            | Gpusim.Kernels.P_ptr, Gpusim.Kernels.Ptr v ->
                Bytes.set_int64_le buf offset (Int64.of_int v)
            | _ ->
                raise
                  (Mismatch
                     (Printf.sprintf "%s: arg %d type mismatch" info.name i)));
            (i + 1, offset + size))
          (0, 0) info.params
      in
      Ok buf
    with Mismatch m -> Error m
  end

let unpack_args info buf =
  let expected = param_buffer_size info in
  if Bytes.length buf <> expected then
    Error
      (Printf.sprintf "%s: parameter buffer is %d bytes, expected %d" info.name
         (Bytes.length buf) expected)
  else begin
    let args =
      List.fold_left
        (fun (acc, offset) p ->
          let size = Gpusim.Kernels.param_size p in
          let offset = align offset size in
          let arg =
            match p with
            | Gpusim.Kernels.P_i32 ->
                Gpusim.Kernels.I32 (Bytes.get_int32_le buf offset)
            | Gpusim.Kernels.P_f32 ->
                Gpusim.Kernels.F32
                  (Int32.float_of_bits (Bytes.get_int32_le buf offset))
            | Gpusim.Kernels.P_i64 ->
                Gpusim.Kernels.I64 (Bytes.get_int64_le buf offset)
            | Gpusim.Kernels.P_f64 ->
                Gpusim.Kernels.F64
                  (Int64.float_of_bits (Bytes.get_int64_le buf offset))
            | Gpusim.Kernels.P_ptr ->
                Gpusim.Kernels.Ptr (Int64.to_int (Bytes.get_int64_le buf offset))
          in
          (arg :: acc, offset + size))
        ([], 0) info.params
      |> fst |> List.rev |> Array.of_list
    in
    Ok args
  end
