lib/cubin/lzss.ml: Buffer Char Float Hashtbl List String
