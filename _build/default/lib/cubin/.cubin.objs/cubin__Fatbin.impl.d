lib/cubin/fatbin.ml: Buffer Char List Printf String
