lib/cubin/lzss.mli:
