lib/cubin/image.mli: Gpusim
