lib/cubin/image.ml: Array Buffer Bytes Char Gpusim Int32 Int64 List Lzss Printf String
