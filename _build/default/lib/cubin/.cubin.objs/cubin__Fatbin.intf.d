lib/cubin/fatbin.mli:
