(* Sustained fraction of peak fp32 for small-matrix panel-bound dense
   factorizations (latency-bound; calibrated to ~18 ms for n = 900 on the
   A100 profile — see EXPERIMENTS.md). *)
let solver_efficiency = 0.0014

let create ctx = Int64.of_int (Context.add_cusolver ctx)

let destroy ctx h =
  if Context.remove_cusolver ctx (Int64.to_int h) then Error.Success
  else Error.Invalid_handle

let check_handle ctx handle k =
  if Context.valid_cusolver ctx (Int64.to_int handle) then k ()
  else Error Error.Invalid_handle

let sgetrf_buffer_size ctx ~handle ~m ~n ~a ~lda =
  Api.(charge ctx dispatch_ns);
  ignore a;
  check_handle ctx handle (fun () ->
      if m <= 0 || n <= 0 || lda < m then Error Error.Invalid_value
      else Ok (m * n))

(* Extract a column-major matrix into a flat float array for speed; the
   factorization is O(n³) scalar operations and must not go through the
   bounds-checked byte accessors element-wise. *)
let extract mem base ~rows ~cols ~ld =
  let a = Array.make (rows * cols) 0.0 in
  for j = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      a.((j * rows) + i) <- Gpusim.Memory.get_f32 mem (base + (4 * ((j * ld) + i)))
    done
  done;
  a

let write_back mem base ~rows ~cols ~ld a =
  for j = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      Gpusim.Memory.set_f32 mem (base + (4 * ((j * ld) + i))) a.((j * rows) + i)
    done
  done

let getrf_cost (d : Gpusim.Device.t) ~m ~n =
  let k = min m n in
  let flops =
    (* Σ over panels ≈ mn·k - (m+n)k²/2 + k³/3; use the square-case form *)
    Float.of_int m *. Float.of_int n *. Float.of_int k *. (2.0 /. 3.0)
  in
  flops /. (d.Gpusim.Device.fp32_tflops *. 1e12 *. solver_efficiency) *. 1e9
  +. 200_000.0 (* library entry + panel setup *)

let getrs_cost (d : Gpusim.Device.t) ~n ~nrhs =
  let flops = 2.0 *. Float.of_int n *. Float.of_int n *. Float.of_int nrhs in
  (* two triangular solves: latency-bound sweeps over n panels *)
  flops /. (d.Gpusim.Device.fp32_tflops *. 1e12 *. solver_efficiency) *. 1e9
  +. 1_000_000.0

let run_on_gpu ctx ~cost_ns execute =
  let gpu = Context.gpu ctx in
  let kernel =
    {
      Gpusim.Kernels.name = "cusolver_internal";
      params = [];
      execute =
        (if Context.functional ctx then fun mem _ -> execute mem
         else fun _ _ -> ());
      cost = (fun _ _ -> cost_ns);
    }
  in
  let launch =
    {
      Gpusim.Kernels.grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
      block = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
      shared_mem = 0;
      args = [||];
    }
  in
  let clock = Context.clock ctx in
  (* the solver routines are synchronous: the host waits for completion *)
  let completion =
    Gpusim.Gpu.launch gpu ~now:(clock.Context.now ()) kernel launch
  in
  clock.Context.advance_to completion

let sgetrf ctx ~handle ~m ~n ~a ~lda ~workspace ~ipiv =
  Api.(charge ctx (dispatch_ns * 2));
  ignore workspace;
  check_handle ctx handle (fun () ->
      if m <= 0 || n <= 0 || lda < m then Error Error.Invalid_value
      else begin
        let info = ref 0 in
        let d = Gpusim.Gpu.device (Context.gpu ctx) in
        run_on_gpu ctx ~cost_ns:(getrf_cost d ~m ~n) (fun mem ->
            let mat = extract mem (Int64.to_int a) ~rows:m ~cols:n ~ld:lda in
            let k = min m n in
            let piv = Array.make k 0 in
            (try
               for step = 0 to k - 1 do
                 (* partial pivot: largest |value| in column [step] *)
                 let pivot_row = ref step in
                 let pivot_val = ref (Float.abs mat.((step * m) + step)) in
                 for i = step + 1 to m - 1 do
                   let v = Float.abs mat.((step * m) + i) in
                   if v > !pivot_val then begin
                     pivot_val := v;
                     pivot_row := i
                   end
                 done;
                 piv.(step) <- !pivot_row + 1;
                 if !pivot_val = 0.0 then begin
                   info := step + 1;
                   raise Exit
                 end;
                 if !pivot_row <> step then
                   for j = 0 to n - 1 do
                     let tmp = mat.((j * m) + step) in
                     mat.((j * m) + step) <- mat.((j * m) + !pivot_row);
                     mat.((j * m) + !pivot_row) <- tmp
                   done;
                 let diag = mat.((step * m) + step) in
                 for i = step + 1 to m - 1 do
                   mat.((step * m) + i) <- mat.((step * m) + i) /. diag
                 done;
                 for j = step + 1 to n - 1 do
                   let ukj = mat.((j * m) + step) in
                   for i = step + 1 to m - 1 do
                     mat.((j * m) + i) <-
                       mat.((j * m) + i) -. (mat.((step * m) + i) *. ukj)
                   done
                 done
               done
             with Exit -> ());
            write_back mem (Int64.to_int a) ~rows:m ~cols:n ~ld:lda mat;
            for s = 0 to k - 1 do
              Gpusim.Memory.set_i32 mem
                (Int64.to_int ipiv + (4 * s))
                (Int32.of_int piv.(s))
            done);
        Ok !info
      end)

let sgetrs ctx ~handle ~n ~nrhs ~a ~lda ~ipiv ~b ~ldb =
  Api.(charge ctx (dispatch_ns * 2));
  check_handle ctx handle (fun () ->
      if n <= 0 || nrhs <= 0 || lda < n || ldb < n then
        Error Error.Invalid_value
      else begin
        let d = Gpusim.Gpu.device (Context.gpu ctx) in
        run_on_gpu ctx ~cost_ns:(getrs_cost d ~n ~nrhs) (fun mem ->
            let lu = extract mem (Int64.to_int a) ~rows:n ~cols:n ~ld:lda in
            let rhs = extract mem (Int64.to_int b) ~rows:n ~cols:nrhs ~ld:ldb in
            let piv =
              Array.init n (fun s ->
                  Int32.to_int
                    (Gpusim.Memory.get_i32 mem (Int64.to_int ipiv + (4 * s))))
            in
            for col = 0 to nrhs - 1 do
              let x = Array.init n (fun i -> rhs.((col * n) + i)) in
              (* apply row interchanges *)
              for s = 0 to n - 1 do
                let p = piv.(s) - 1 in
                if p <> s && p >= 0 && p < n then begin
                  let tmp = x.(s) in
                  x.(s) <- x.(p);
                  x.(p) <- tmp
                end
              done;
              (* forward substitution with unit-diagonal L *)
              for i = 1 to n - 1 do
                let acc = ref x.(i) in
                for j = 0 to i - 1 do
                  acc := !acc -. (lu.((j * n) + i) *. x.(j))
                done;
                x.(i) <- !acc
              done;
              (* back substitution with U *)
              for i = n - 1 downto 0 do
                let acc = ref x.(i) in
                for j = i + 1 to n - 1 do
                  acc := !acc -. (lu.((j * n) + i) *. x.(j))
                done;
                x.(i) <- !acc /. lu.((i * n) + i)
              done;
              for i = 0 to n - 1 do
                rhs.((col * n) + i) <- x.(i)
              done
            done;
            write_back mem (Int64.to_int b) ~rows:n ~cols:nrhs ~ld:ldb rhs);
        Ok 0
      end)
