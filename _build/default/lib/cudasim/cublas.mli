(** cuBLAS subset: the dense SGEMM the proxy applications use.

    Matrices are column-major with explicit leading dimensions, as in the
    real library. Only the no-transpose case is exposed, which is what the
    CUDA samples call. *)

val create : Context.t -> int64
(** cublasCreate: returns a handle. *)

val destroy : Context.t -> int64 -> Error.t

type sgemm_args = {
  handle : int64;
  m : int;
  n : int;
  k : int;
  alpha : float;
  a : int64;  (** device pointer, m×k, lda *)
  lda : int;
  b : int64;  (** k×n, ldb *)
  ldb : int;
  beta : float;
  c : int64;  (** m×n, ldc *)
  ldc : int;
}

val sgemm : Context.t -> sgemm_args -> Error.t
(** C ← α·A·B + β·C (single precision, no transposition). Asynchronous:
    enqueued on the default stream. *)

(** {1 Level-1 / level-2 routines} *)

type sgemv_args = {
  gv_handle : int64;
  gv_m : int;
  gv_n : int;
  gv_alpha : float;
  gv_a : int64;  (** column-major m×n *)
  gv_lda : int;
  gv_x : int64;
  gv_incx : int;
  gv_beta : float;
  gv_y : int64;
  gv_incy : int;
}

val sgemv : Context.t -> sgemv_args -> Error.t
(** y ← α·A·x + β·y (no transposition). *)

val sdot :
  Context.t -> handle:int64 -> n:int -> x:int64 -> incx:int -> y:int64 ->
  incy:int -> (float, Error.t) result
(** Σ xᵢ·yᵢ, returned to the host (default pointer mode). *)

val sscal :
  Context.t -> handle:int64 -> n:int -> alpha:float -> x:int64 -> incx:int ->
  Error.t
(** x ← α·x. *)

val snrm2 :
  Context.t -> handle:int64 -> n:int -> x:int64 -> incx:int ->
  (float, Error.t) result
(** ‖x‖₂. *)
