(** cuSOLVER dense subset: LU factorization and solve, the workload of the
    cuSolverDn_LinearSolver proxy application.

    Matrices are column-major single precision, pivot indices are 1-based
    (LAPACK convention) stored as i32 in device memory — matching
    [cusolverDnSgetrf]/[cusolverDnSgetrs].

    Timing: small-matrix dense factorizations on a GPU are panel- and
    latency-bound, far from peak FLOPs; the cost model applies a dedicated
    solver efficiency (see {!solver_efficiency}) calibrated so that a
    900×900 SGETRF takes ~18 ms on the A100 profile, which puts the
    Fig. 5b proxy app in the paper's kernel-dominated regime. *)

val solver_efficiency : float

val create : Context.t -> int64
val destroy : Context.t -> int64 -> Error.t

val sgetrf_buffer_size :
  Context.t -> handle:int64 -> m:int -> n:int -> a:int64 -> lda:int ->
  (int, Error.t) result
(** Workspace float count needed by {!sgetrf}. *)

val sgetrf :
  Context.t -> handle:int64 -> m:int -> n:int -> a:int64 -> lda:int ->
  workspace:int64 -> ipiv:int64 -> (int, Error.t) result
(** In-place LU with partial pivoting; returns LAPACK [info] (0 = success,
    [k > 0] = zero pivot at step [k]). *)

val sgetrs :
  Context.t -> handle:int64 -> n:int -> nrhs:int -> a:int64 -> lda:int ->
  ipiv:int64 -> b:int64 -> ldb:int -> (int, Error.t) result
(** Solve A·X = B using a prior {!sgetrf}; B is overwritten with X. *)
