type t =
  | Success
  | Invalid_value
  | Memory_allocation
  | Invalid_device
  | Invalid_handle
  | Not_found
  | Not_ready
  | Launch_failure
  | Unknown

let code = function
  | Success -> 0
  | Invalid_value -> 1
  | Memory_allocation -> 2
  | Invalid_device -> 101
  | Invalid_handle -> 400
  | Not_found -> 500
  | Not_ready -> 600
  | Launch_failure -> 719
  | Unknown -> 999

let of_code = function
  | 0 -> Success
  | 1 -> Invalid_value
  | 2 -> Memory_allocation
  | 101 -> Invalid_device
  | 400 -> Invalid_handle
  | 500 -> Not_found
  | 600 -> Not_ready
  | 719 -> Launch_failure
  | _ -> Unknown

let to_string = function
  | Success -> "cudaSuccess"
  | Invalid_value -> "cudaErrorInvalidValue"
  | Memory_allocation -> "cudaErrorMemoryAllocation"
  | Invalid_device -> "cudaErrorInvalidDevice"
  | Invalid_handle -> "cudaErrorInvalidResourceHandle"
  | Not_found -> "cudaErrorNotFound"
  | Not_ready -> "cudaErrorNotReady"
  | Launch_failure -> "cudaErrorLaunchFailure"
  | Unknown -> "cudaErrorUnknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)

exception Cuda_error of t

let () =
  Printexc.register_printer (function
    | Cuda_error e -> Some ("Cudasim.Error.Cuda_error: " ^ to_string e)
    | _ -> None)

let check = function Success -> () | e -> raise (Cuda_error e)
