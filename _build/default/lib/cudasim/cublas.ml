let create ctx = Int64.of_int (Context.add_cublas ctx)

let destroy ctx h =
  if Context.remove_cublas ctx (Int64.to_int h) then Error.Success
  else Error.Invalid_handle

type sgemm_args = {
  handle : int64;
  m : int;
  n : int;
  k : int;
  alpha : float;
  a : int64;
  lda : int;
  b : int64;
  ldb : int;
  beta : float;
  c : int64;
  ldc : int;
}

(* Column-major addressing: element (i, j) of a matrix with leading
   dimension ld sits at 4 * (j * ld + i). *)
let f32 mem base ld i j = Gpusim.Memory.get_f32 mem (base + (4 * ((j * ld) + i)))

let set_f32 mem base ld i j v =
  Gpusim.Memory.set_f32 mem (base + (4 * ((j * ld) + i))) v

let sgemm_kernel args =
  let execute mem (_ : Gpusim.Kernels.launch) =
    let a = Int64.to_int args.a
    and b = Int64.to_int args.b
    and c = Int64.to_int args.c in
    for j = 0 to args.n - 1 do
      for i = 0 to args.m - 1 do
        let acc = ref 0.0 in
        for l = 0 to args.k - 1 do
          acc := !acc +. (f32 mem a args.lda i l *. f32 mem b args.ldb l j)
        done;
        let prior = if args.beta = 0.0 then 0.0 else f32 mem c args.ldc i j in
        set_f32 mem c args.ldc i j
          ((args.alpha *. !acc) +. (args.beta *. prior))
      done
    done
  in
  let cost (d : Gpusim.Device.t) (_ : Gpusim.Kernels.launch) =
    let flops =
      2.0 *. Float.of_int args.m *. Float.of_int args.n *. Float.of_int args.k
    in
    let bytes =
      4.0
      *. Float.of_int ((args.m * args.k) + (args.k * args.n) + (args.m * args.n))
    in
    let compute = flops /. Gpusim.Device.effective_flops d `F32 *. 1e9 in
    let memory = bytes /. (d.Gpusim.Device.memory_bandwidth *. 0.85) *. 1e9 in
    Float.max compute memory +. 2_000.0
  in
  {
    Gpusim.Kernels.name = "cublasSgemm_internal";
    params = [];
    execute;
    cost;
  }

let sgemm ctx args =
  Api.(charge ctx (dispatch_ns * 2));
  if not (Context.valid_cublas ctx (Int64.to_int args.handle)) then
    Error.Invalid_handle
  else if args.m < 0 || args.n < 0 || args.k < 0 || args.lda < max 1 args.m
          || args.ldb < max 1 args.k || args.ldc < max 1 args.m
  then Error.Invalid_value
  else begin
    let kernel = sgemm_kernel args in
    let kernel =
      if Context.functional ctx then kernel
      else { kernel with Gpusim.Kernels.execute = (fun _ _ -> ()) }
    in
    let launch =
      {
        Gpusim.Kernels.grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
        block = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
        shared_mem = 0;
        args = [||];
      }
    in
    let gpu = Context.gpu ctx in
    match
      Gpusim.Gpu.launch gpu
        ~now:((Context.clock ctx).Context.now ())
        kernel launch
    with
    | (_ : Simnet.Time.t) -> Error.Success
    | exception Gpusim.Memory.Error _ -> Error.Invalid_value
  end

(* --- level 1 / level 2 routines --- *)

let check_l1 ctx ~handle ~n k =
  Api.(charge ctx dispatch_ns);
  if not (Context.valid_cublas ctx (Int64.to_int handle)) then
    Error Error.Invalid_handle
  else if n < 0 then Error Error.Invalid_value
  else Ok (k ())

(* Run a BLAS routine synchronously on the device (the L1 routines that
   return scalars block the host, as the real library's default pointer
   mode does). *)
let run_sync ctx ~cost_ns execute =
  let gpu = Context.gpu ctx in
  let kernel =
    {
      Gpusim.Kernels.name = "cublas_internal";
      params = [];
      execute =
        (if Context.functional ctx then fun mem _ -> execute mem
         else fun _ _ -> ());
      cost = (fun _ _ -> cost_ns);
    }
  in
  let launch =
    {
      Gpusim.Kernels.grid = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
      block = { Gpusim.Kernels.x = 1; y = 1; z = 1 };
      shared_mem = 0;
      args = [||];
    }
  in
  let clock = Context.clock ctx in
  let completion =
    Gpusim.Gpu.launch gpu ~now:(clock.Context.now ()) kernel launch
  in
  clock.Context.advance_to completion

let stream_cost (d : Gpusim.Device.t) bytes =
  (Float.of_int bytes /. (d.Gpusim.Device.memory_bandwidth *. 0.85) *. 1e9)
  +. Float.of_int d.Gpusim.Device.launch_overhead_ns

type sgemv_args = {
  gv_handle : int64;
  gv_m : int;
  gv_n : int;
  gv_alpha : float;
  gv_a : int64;
  gv_lda : int;
  gv_x : int64;
  gv_incx : int;
  gv_beta : float;
  gv_y : int64;
  gv_incy : int;
}

let sgemv ctx (g : sgemv_args) =
  Api.(charge ctx dispatch_ns);
  if not (Context.valid_cublas ctx (Int64.to_int g.gv_handle)) then
    Error.Invalid_handle
  else if g.gv_m < 0 || g.gv_n < 0 || g.gv_lda < max 1 g.gv_m
          || g.gv_incx = 0 || g.gv_incy = 0
  then Error.Invalid_value
  else begin
    let d = Gpusim.Gpu.device (Context.gpu ctx) in
    run_sync ctx ~cost_ns:(stream_cost d (4 * g.gv_m * g.gv_n)) (fun mem ->
        (* y <- alpha * A x + beta * y; column-major m x n *)
        let a = Int64.to_int g.gv_a
        and x = Int64.to_int g.gv_x
        and y = Int64.to_int g.gv_y in
        for i = 0 to g.gv_m - 1 do
          let acc = ref 0.0 in
          for j = 0 to g.gv_n - 1 do
            acc :=
              !acc
              +. f32 mem a g.gv_lda i j
                 *. Gpusim.Memory.get_f32 mem (x + (4 * j * g.gv_incx))
          done;
          let yi = y + (4 * i * g.gv_incy) in
          let prior =
            if g.gv_beta = 0.0 then 0.0 else Gpusim.Memory.get_f32 mem yi
          in
          Gpusim.Memory.set_f32 mem yi
            ((g.gv_alpha *. !acc) +. (g.gv_beta *. prior))
        done);
    Error.Success
  end

let sdot ctx ~handle ~n ~x ~incx ~y ~incy =
  if incx = 0 || incy = 0 then Error Error.Invalid_value
  else
    check_l1 ctx ~handle ~n (fun () ->
        let result = ref 0.0 in
        let d = Gpusim.Gpu.device (Context.gpu ctx) in
        run_sync ctx ~cost_ns:(stream_cost d (8 * n)) (fun mem ->
            let xp = Int64.to_int x and yp = Int64.to_int y in
            let acc = ref 0.0 in
            for i = 0 to n - 1 do
              acc :=
                !acc
                +. Gpusim.Memory.get_f32 mem (xp + (4 * i * incx))
                   *. Gpusim.Memory.get_f32 mem (yp + (4 * i * incy))
            done;
            result := !acc);
        !result)

let sscal ctx ~handle ~n ~alpha ~x ~incx =
  if incx = 0 then Error.Invalid_value
  else
    match
      check_l1 ctx ~handle ~n (fun () ->
          let d = Gpusim.Gpu.device (Context.gpu ctx) in
          run_sync ctx ~cost_ns:(stream_cost d (8 * n)) (fun mem ->
              let xp = Int64.to_int x in
              for i = 0 to n - 1 do
                let addr = xp + (4 * i * incx) in
                Gpusim.Memory.set_f32 mem addr
                  (alpha *. Gpusim.Memory.get_f32 mem addr)
              done))
    with
    | Ok () -> Error.Success
    | Error e -> e

let snrm2 ctx ~handle ~n ~x ~incx =
  if incx = 0 then Error Error.Invalid_value
  else
    check_l1 ctx ~handle ~n (fun () ->
        let result = ref 0.0 in
        let d = Gpusim.Gpu.device (Context.gpu ctx) in
        run_sync ctx ~cost_ns:(stream_cost d (4 * n)) (fun mem ->
            let xp = Int64.to_int x in
            let acc = ref 0.0 in
            for i = 0 to n - 1 do
              let v = Gpusim.Memory.get_f32 mem (xp + (4 * i * incx)) in
              acc := !acc +. (v *. v)
            done;
            result := Float.sqrt !acc);
        !result)
