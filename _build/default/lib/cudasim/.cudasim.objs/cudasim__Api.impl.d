lib/cudasim/api.ml: Bytes Context Cubin Error Float Gpusim Int64 List Simnet String
