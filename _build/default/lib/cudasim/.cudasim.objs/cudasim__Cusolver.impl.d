lib/cudasim/cusolver.ml: Api Array Context Error Float Gpusim Int32 Int64
