lib/cudasim/error.mli: Format
