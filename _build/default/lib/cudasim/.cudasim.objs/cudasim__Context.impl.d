lib/cudasim/context.ml: Array Cubin Error Gpusim Hashtbl List Marshal Printf Simnet
