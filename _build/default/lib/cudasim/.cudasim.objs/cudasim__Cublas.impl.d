lib/cudasim/cublas.ml: Api Context Error Float Gpusim Int64 Simnet
