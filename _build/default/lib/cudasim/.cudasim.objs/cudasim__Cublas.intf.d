lib/cudasim/cublas.mli: Context Error
