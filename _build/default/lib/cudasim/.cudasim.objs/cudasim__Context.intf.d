lib/cudasim/context.mli: Cubin Error Gpusim Simnet
