lib/cudasim/cusolver.mli: Context Error
