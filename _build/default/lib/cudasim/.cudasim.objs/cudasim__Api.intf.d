lib/cudasim/api.mli: Context Error Gpusim Simnet
