lib/cudasim/error.ml: Format Printexc
