(** CUDA error codes, as carried in every Cricket RPC result.

    The numeric values match the [cuda_error] enum in the RPCL
    specification (and the corresponding [cudaError_t] values). *)

type t =
  | Success
  | Invalid_value
  | Memory_allocation
  | Invalid_device
  | Invalid_handle
  | Not_found
  | Not_ready
  | Launch_failure
  | Unknown

val code : t -> int
val of_code : int -> t
(** Unknown codes map to {!Unknown}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Cuda_error of t
(** Raised by the client-side API wrappers on a non-[Success] result. *)

val check : t -> unit
(** Raise {!Cuda_error} unless [Success]. *)
