(** Port of the CUDA-samples bandwidthTest (Fig. 7).

    Measures host↔device memory transfer bandwidth through the Cricket
    RPC-argument path. The paper's configuration moves 512 MiB per
    direction; we stream it in 64 MiB chunks (per-byte behaviour on the
    RPC-args path is identical, and it bounds host RAM). *)

type direction = Host_to_device | Device_to_host

val direction_to_string : direction -> string

type result = {
  direction : direction;
  bytes : int;
  elapsed : Simnet.Time.t;
  mib_per_s : float;
}

val measure :
  ?total_bytes:int ->
  ?chunk_bytes:int ->
  direction ->
  Unikernel.Runner.env ->
  result
(** Defaults: 512 MiB total in 64 MiB chunks. *)

val run : ?verify:bool -> Unikernel.Runner.env -> result * result
(** Both directions (H2D, D2H); with [verify], round-trips a pattern and
    checks integrity. *)
