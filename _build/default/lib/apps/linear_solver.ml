type params = { n : int; iterations : int }

let default = { n = 900; iterations = 20 }
let paper = { n = 900; iterations = 1000 }

(* Deterministic diagonally-dominant system so the LU is well-conditioned
   and pivoting is exercised but stable. Column-major. *)
let build_system n =
  let a = Array.make (n * n) 0.0 in
  let state = ref 123456789 in
  let next_float () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3fffffff in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3fffffff in
    state := x;
    Float.of_int (x land 0xffff) /. 65536.0
  in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      a.((j * n) + i) <- next_float () -. 0.5
    done
  done;
  for i = 0 to n - 1 do
    a.((i * n) + i) <- a.((i * n) + i) +. Float.of_int n
  done;
  let x_true = Array.init n (fun i -> Float.of_int ((i mod 19) + 1) /. 19.0) in
  let b = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (a.((j * n) + i) *. x_true.(j))
    done;
    b.(i) <- !acc
  done;
  (a, b)

let residual_inf a b x n =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (a.((j * n) + i) *. x.(j))
    done;
    let r = Float.abs (!acc -. b.(i)) in
    if r > !worst then worst := r
  done;
  !worst

let run ?(verify = true) p (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let n = p.n in
  Unikernel.Runner.charge_rng env (4 * n * n);
  let a, b = build_system n in
  let a_bytes = Workload.f32_bytes a in
  let b_bytes = Workload.f32_bytes b in
  ignore (Cricket.Client.get_device_count client);
  Cricket.Client.set_device client 0;
  let handle = Cricket.Client.cusolver_create client in
  let d_a = Cricket.Client.malloc client (4 * n * n) in
  let d_a_copy = Cricket.Client.malloc client (4 * n * n) in
  let d_b = Cricket.Client.malloc client (4 * n) in
  (* the sample times the factorization with CUDA events *)
  let ev_start = Cricket.Client.event_create client in
  let ev_stop = Cricket.Client.event_create client in
  let verified = ref false in
  for iteration = 1 to p.iterations do
    (* fresh upload every iteration, as the sample reloads its input;
       the second copy backs the residual check *)
    Cricket.Client.memcpy_h2d client ~dst:d_a a_bytes;
    Cricket.Client.memcpy_h2d client ~dst:d_a_copy a_bytes;
    Cricket.Client.memcpy_h2d client ~dst:d_b b_bytes;
    let lwork =
      Cricket.Client.cusolver_sgetrf_buffer_size client ~handle ~m:n ~n
        ~a:d_a ~lda:n
    in
    let d_work = Cricket.Client.malloc client (4 * max 1 lwork) in
    let d_ipiv = Cricket.Client.malloc client (4 * n) in
    Cricket.Client.memset client ~ptr:d_ipiv ~value:0 ~len:(4 * n);
    Cricket.Client.event_record client ~event:ev_start ~stream:0L;
    let info =
      Cricket.Client.cusolver_sgetrf client ~handle ~m:n ~n ~a:d_a ~lda:n
        ~workspace:d_work ~ipiv:d_ipiv
    in
    if info <> 0 then failwith (Printf.sprintf "sgetrf info = %d" info);
    let info =
      Cricket.Client.cusolver_sgetrs client ~handle ~n ~nrhs:1 ~a:d_a ~lda:n
        ~ipiv:d_ipiv ~b:d_b ~ldb:n
    in
    if info <> 0 then failwith (Printf.sprintf "sgetrs info = %d" info);
    Cricket.Client.event_record client ~event:ev_stop ~stream:0L;
    Cricket.Client.device_synchronize client;
    ignore (Cricket.Client.event_elapsed_ms client ~start:ev_start ~stop:ev_stop);
    (* the sample reads back the pivot sequence alongside the solution *)
    ignore (Cricket.Client.memcpy_d2h client ~src:d_ipiv ~len:(4 * n));
    let x_bytes = Cricket.Client.memcpy_d2h client ~src:d_b ~len:(4 * n) in
    if verify && iteration = 1 then begin
      let x = Workload.f32_array x_bytes in
      let r = residual_inf a b x n in
      (* f32 arithmetic on a diagonally dominant n=900 system *)
      if r > 0.05 then
        failwith (Printf.sprintf "linear solver: residual %g too large" r);
      verified := true
    end;
    Cricket.Client.free client d_work;
    Cricket.Client.free client d_ipiv
  done;
  ignore !verified;
  Cricket.Client.event_destroy client ev_start;
  Cricket.Client.event_destroy client ev_stop;
  Cricket.Client.free client d_a;
  Cricket.Client.free client d_a_copy;
  Cricket.Client.free client d_b;
  Cricket.Client.cusolver_destroy client handle
