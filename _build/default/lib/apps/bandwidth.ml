type direction = Host_to_device | Device_to_host

let direction_to_string = function
  | Host_to_device -> "host-to-device"
  | Device_to_host -> "device-to-host"

type result = {
  direction : direction;
  bytes : int;
  elapsed : Simnet.Time.t;
  mib_per_s : float;
}

let measure ?(total_bytes = 512 lsl 20) ?(chunk_bytes = 64 lsl 20) direction
    (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let engine = env.Unikernel.Runner.engine in
  let chunk_bytes = min chunk_bytes total_bytes in
  let chunks = (total_bytes + chunk_bytes - 1) / chunk_bytes in
  let d_buf = Cricket.Client.malloc client chunk_bytes in
  let payload = Bytes.make chunk_bytes '\x5a' in
  (* warm-up transfer, as bandwidthTest does *)
  Cricket.Client.memcpy_h2d client ~dst:d_buf
    (Bytes.sub payload 0 (min chunk_bytes (1 lsl 20)));
  Cricket.Client.device_synchronize client;
  let t0 = Simnet.Engine.now engine in
  (match direction with
  | Host_to_device ->
      for _ = 1 to chunks do
        Cricket.Client.memcpy_h2d client ~dst:d_buf payload
      done
  | Device_to_host ->
      for _ = 1 to chunks do
        ignore (Cricket.Client.memcpy_d2h client ~src:d_buf ~len:chunk_bytes)
      done);
  Cricket.Client.device_synchronize client;
  let elapsed = Simnet.Time.sub (Simnet.Engine.now engine) t0 in
  Cricket.Client.free client d_buf;
  let bytes = chunks * chunk_bytes in
  {
    direction;
    bytes;
    elapsed;
    mib_per_s =
      Float.of_int bytes /. 1048576.0 /. Simnet.Time.to_float_s elapsed;
  }

let run ?(verify = true) env =
  let client = env.Unikernel.Runner.client in
  if verify then begin
    let pattern =
      Workload.xorshift_bytes ~seed:7 (1 lsl 20)
    in
    let d = Cricket.Client.malloc client (Bytes.length pattern) in
    Cricket.Client.memcpy_h2d client ~dst:d pattern;
    let back =
      Cricket.Client.memcpy_d2h client ~src:d ~len:(Bytes.length pattern)
    in
    if not (Bytes.equal pattern back) then
      failwith "bandwidthTest: data corrupted in transit";
    Cricket.Client.free client d
  end;
  let h2d = measure Host_to_device env in
  let d2h = measure Device_to_host env in
  (h2d, d2h)
