let f32_bytes a =
  let b = Bytes.create (4 * Array.length a) in
  Array.iteri
    (fun i v -> Bytes.set_int32_le b (4 * i) (Int32.bits_of_float v))
    a;
  b

let f32_array b =
  if Bytes.length b mod 4 <> 0 then invalid_arg "Workload.f32_array";
  Array.init (Bytes.length b / 4) (fun i ->
      Int32.float_of_bits (Bytes.get_int32_le b (4 * i)))

let fill_constant n v = Array.make n v

let xorshift_bytes ~seed n =
  let state = ref (if seed = 0 then 0x9e3779b9 else seed land 0x3fffffff) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3fffffff in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3fffffff in
    state := x;
    x
  in
  Bytes.init n (fun _ -> Char.chr (next () land 0xff))

let standard_module_names =
  [
    Gpusim.Kernels.matrix_mul_name;
    Gpusim.Kernels.histogram256_name;
    Gpusim.Kernels.merge_histogram256_name;
    Gpusim.Kernels.vector_add_name;
    Gpusim.Kernels.saxpy_name;
    Gpusim.Kernels.reduce_sum_name;
    Gpusim.Kernels.transpose_name;
    Gpusim.Kernels.fill_name;
  ]

let load_standard_module client =
  let image = Cubin.Image.of_registry standard_module_names in
  Cricket.Client.module_load client (Cubin.Image.build ~compress:true image)

let get_kernel client ~modul name =
  Cricket.Client.get_function client ~modul ~name

let approx_equal ?(tolerance = 1e-4) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tolerance *. scale
