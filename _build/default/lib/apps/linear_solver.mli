(** Port of the cuSolverDn_LinearSolver proxy application (Fig. 5b).

    Each iteration uploads a dense system, LU-factorizes it with
    cusolverDnSgetrf (partial pivoting), solves with cusolverDnSgetrs, and
    reads the solution back. The matrix is uploaded twice per iteration (a
    second copy is kept for the residual check, as the sample does), giving
    the paper's profile of ≈20 API calls and ≈6.4 MB transferred per
    iteration — ≈6.07 GiB over 1000 iterations. *)

type params = {
  n : int;  (** system size *)
  iterations : int;
}

val default : params
(** 900 × 900, 20 iterations. *)

val paper : params
(** 900 × 900, 1000 iterations. *)

val run : ?verify:bool -> params -> Unikernel.Runner.env -> unit
(** [verify] checks the residual ‖Ax − b‖∞ of the first iteration. *)
