(** Shared helpers for the proxy applications: host-side buffers of f32
    values, deterministic input generation, and kernel-module plumbing. *)

val f32_bytes : float array -> bytes
(** Little-endian f32 serialization (host memory layout). *)

val f32_array : bytes -> float array

val fill_constant : int -> float -> float array

val xorshift_bytes : seed:int -> int -> bytes
(** Deterministic pseudo-random byte stream (the Rust-port generator). *)

val load_standard_module : Cricket.Client.t -> int64
(** Build the repository's standard kernel cubin (all registry kernels,
    compressed) and load it through the client. *)

val get_kernel : Cricket.Client.t -> modul:int64 -> string -> Cricket.Client.func

val approx_equal : ?tolerance:float -> float -> float -> bool
