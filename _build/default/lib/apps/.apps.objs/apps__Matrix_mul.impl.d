lib/apps/matrix_mul.ml: Array Cricket Float Gpusim Int32 Int64 Printf Unikernel Workload
