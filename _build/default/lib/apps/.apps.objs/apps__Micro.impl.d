lib/apps/micro.ml: Cricket Float Gpusim Int64 Simnet Unikernel Workload
