lib/apps/matrix_mul.mli: Unikernel
