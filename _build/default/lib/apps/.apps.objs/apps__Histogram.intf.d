lib/apps/histogram.mli: Unikernel
