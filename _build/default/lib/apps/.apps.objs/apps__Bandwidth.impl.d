lib/apps/bandwidth.ml: Bytes Cricket Float Simnet Unikernel Workload
