lib/apps/histogram.ml: Array Bytes Char Cricket Gpusim Int32 Int64 Printf Unikernel Workload
