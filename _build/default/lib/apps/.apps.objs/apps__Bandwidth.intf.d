lib/apps/bandwidth.mli: Simnet Unikernel
