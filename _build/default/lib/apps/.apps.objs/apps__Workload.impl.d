lib/apps/workload.ml: Array Bytes Char Cricket Cubin Float Gpusim Int32
