lib/apps/linear_solver.ml: Array Cricket Float Printf Unikernel Workload
