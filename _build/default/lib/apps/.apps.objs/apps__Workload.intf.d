lib/apps/workload.mli: Cricket
