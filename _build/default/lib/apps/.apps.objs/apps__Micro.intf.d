lib/apps/micro.mli: Simnet Unikernel
