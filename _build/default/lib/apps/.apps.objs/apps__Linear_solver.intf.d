lib/apps/linear_solver.mli: Unikernel
