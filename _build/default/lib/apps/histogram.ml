type params = { data_bytes : int; iterations : int }

let default = { data_bytes = 64 lsl 20; iterations = 300 }
let paper = { data_bytes = 64 lsl 20; iterations = 40_000 }

let bins = 256

let reference_histogram data =
  let counts = Array.make bins 0 in
  Bytes.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) data;
  counts

let run ?(verify = true) p (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  (* input generation: this is where the C samples' slow rand() bites *)
  Unikernel.Runner.charge_rng env p.data_bytes;
  let data = Workload.xorshift_bytes ~seed:42 p.data_bytes in
  ignore (Cricket.Client.get_device_count client);
  Cricket.Client.set_device client 0;
  let d_data = Cricket.Client.malloc client p.data_bytes in
  let d_partial = Cricket.Client.malloc client (4 * bins) in
  let d_hist = Cricket.Client.malloc client (4 * bins) in
  Cricket.Client.memcpy_h2d client ~dst:d_data data;
  let modul = Workload.load_standard_module client in
  let histogram_kernel =
    Workload.get_kernel client ~modul Gpusim.Kernels.histogram256_name
  in
  let merge_kernel =
    Workload.get_kernel client ~modul Gpusim.Kernels.merge_histogram256_name
  in
  let grid = { Cricket.Client.x = 240; y = 1; z = 1 } in
  let blk = { Cricket.Client.x = 192; y = 1; z = 1 } in
  for _ = 1 to p.iterations do
    Cricket.Client.launch client histogram_kernel ~grid ~block:blk
      [|
        Gpusim.Kernels.Ptr (Int64.to_int d_partial);
        Gpusim.Kernels.Ptr (Int64.to_int d_data);
        Gpusim.Kernels.I32 (Int32.of_int p.data_bytes);
      |];
    Cricket.Client.launch client merge_kernel
      ~grid:{ Cricket.Client.x = bins; y = 1; z = 1 }
      ~block:{ Cricket.Client.x = 256; y = 1; z = 1 }
      [|
        Gpusim.Kernels.Ptr (Int64.to_int d_hist);
        Gpusim.Kernels.Ptr (Int64.to_int d_partial);
        Gpusim.Kernels.I32 1l;
      |]
  done;
  Cricket.Client.device_synchronize client;
  let result = Cricket.Client.memcpy_d2h client ~src:d_hist ~len:(4 * bins) in
  if verify then begin
    let expected = reference_histogram data in
    let got =
      Array.init bins (fun i ->
          Int32.to_int (Bytes.get_int32_le result (4 * i)))
    in
    Array.iteri
      (fun i v ->
        if v <> expected.(i) then
          failwith
            (Printf.sprintf "histogram: bin %d = %d, expected %d" i v
               expected.(i)))
      got
  end;
  Cricket.Client.free client d_data;
  Cricket.Client.free client d_partial;
  Cricket.Client.free client d_hist;
  Cricket.Client.module_unload client modul
