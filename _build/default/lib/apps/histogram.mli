(** Port of the CUDA-samples histogram proxy application (Fig. 5c).

    Computes the 256-bin histogram of a pseudo-randomly initialized byte
    array. Each iteration launches the two-kernel pipeline of the sample
    (per-block partial histograms, then a merge). Initialization cost is
    charged at the configuration's RNG speed — the mechanism behind the
    paper's 37.6 % C-vs-Rust gap on this app. *)

type params = {
  data_bytes : int;
  iterations : int;
}

val default : params
(** 64 MiB, 300 iterations. *)

val paper : params
(** 64 MiB, 40 000 iterations (≈ 80 033 API calls, as reported). *)

val run : ?verify:bool -> params -> Unikernel.Runner.env -> unit
