type which = Get_device_count | Malloc_free | Kernel_launch

let which_to_string = function
  | Get_device_count -> "cudaGetDeviceCount"
  | Malloc_free -> "cudaMalloc/cudaFree"
  | Kernel_launch -> "kernel launch"

type result = {
  which : which;
  calls : int;
  elapsed : Simnet.Time.t;
  ns_per_call : float;
}

let run ?(calls = 100_000) which (env : Unikernel.Runner.env) =
  let client = env.Unikernel.Runner.client in
  let engine = env.Unikernel.Runner.engine in
  ignore (Cricket.Client.get_device_count client);
  let measure body =
    let t0 = Simnet.Engine.now engine in
    body ();
    Simnet.Time.sub (Simnet.Engine.now engine) t0
  in
  let elapsed =
    match which with
    | Get_device_count ->
        measure (fun () ->
            for _ = 1 to calls do
              ignore (Cricket.Client.get_device_count client)
            done)
    | Malloc_free ->
        measure (fun () ->
            for _ = 1 to calls do
              let p = Cricket.Client.malloc client 1048576 in
              Cricket.Client.free client p
            done)
    | Kernel_launch ->
        let d = Cricket.Client.malloc client 4096 in
        let modul = Workload.load_standard_module client in
        let func =
          Workload.get_kernel client ~modul Gpusim.Kernels.fill_name
        in
        let grid = { Cricket.Client.x = 1; y = 1; z = 1 } in
        let blk = { Cricket.Client.x = 256; y = 1; z = 1 } in
        let args =
          [|
            Gpusim.Kernels.Ptr (Int64.to_int d);
            Gpusim.Kernels.F32 1.0;
            Gpusim.Kernels.I32 1024l;
          |]
        in
        let elapsed =
          measure (fun () ->
              for _ = 1 to calls do
                Cricket.Client.launch client func ~grid ~block:blk args
              done;
              Cricket.Client.device_synchronize client)
        in
        Cricket.Client.free client d;
        Cricket.Client.module_unload client modul;
        elapsed
  in
  {
    which;
    calls;
    elapsed;
    ns_per_call = Int64.to_float elapsed /. Float.of_int calls;
  }
