(** The §4.2 micro-benchmarks (Fig. 6): time for repeated calls of
    cudaGetDeviceCount, alternating cudaMalloc/cudaFree, and kernel
    launches. *)

type which = Get_device_count | Malloc_free | Kernel_launch

val which_to_string : which -> string

type result = {
  which : which;
  calls : int;
  elapsed : Simnet.Time.t;
  ns_per_call : float;
}

val run : ?calls:int -> which -> Unikernel.Runner.env -> result
(** [calls] defaults to 100 000 as in the paper. Malloc/free counts one
    "call" per pair; kernel launch uses a tiny [fillKernel] grid. *)
