open Lexer

exception Parse_error of string * Ast.position

let () =
  Printexc.register_printer (function
    | Parse_error (msg, pos) ->
        Some
          (Format.asprintf "Rpcl.Parser.Parse_error: %s at %a" msg
             Ast.pp_position pos)
    | _ -> None)

type state = { mutable tokens : (token * Ast.position) list }

let peek st =
  match st.tokens with
  | (tok, pos) :: _ -> (tok, pos)
  | [] -> (EOF, { Ast.line = 0; col = 0 })

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let fail_at pos fmt = Format.kasprintf (fun msg -> raise (Parse_error (msg, pos))) fmt

let expect st tok =
  let got, pos = peek st in
  if got = tok then advance st
  else fail_at pos "expected %s, found %s" (token_to_string tok) (token_to_string got)

let expect_ident st =
  match peek st with
  | IDENT s, _ ->
      advance st;
      s
  | got, pos -> fail_at pos "expected identifier, found %s" (token_to_string got)

let parse_value st =
  match peek st with
  | NUMBER n, _ ->
      advance st;
      Ast.Lit n
  | IDENT s, _ ->
      advance st;
      Ast.Named s
  | got, pos -> fail_at pos "expected constant, found %s" (token_to_string got)

(* type-specifier, excluding opaque/string which only occur in declarations *)
let parse_type_specifier st =
  match peek st with
  | KW_INT, _ ->
      advance st;
      Ast.Int
  | KW_HYPER, _ ->
      advance st;
      Ast.Hyper
  | KW_FLOAT, _ ->
      advance st;
      Ast.Float
  | KW_DOUBLE, _ ->
      advance st;
      Ast.Double
  | KW_BOOL, _ ->
      advance st;
      Ast.Bool
  | KW_UNSIGNED, _ -> (
      advance st;
      match peek st with
      | KW_INT, _ ->
          advance st;
          Ast.Uint
      | KW_HYPER, _ ->
          advance st;
          Ast.Uhyper
      | _ -> Ast.Uint (* bare "unsigned" *))
  | (KW_STRUCT | KW_ENUM | KW_UNION), _ ->
      (* "struct foo x" style reference *)
      advance st;
      Ast.Named_type (expect_ident st)
  | IDENT s, _ ->
      advance st;
      Ast.Named_type s
  | got, pos -> fail_at pos "expected type, found %s" (token_to_string got)

(* declaration := "void" | type-spec decorated-name *)
let parse_declaration st =
  match peek st with
  | KW_VOID, _ ->
      advance st;
      Ast.Void
  | KW_OPAQUE, _ -> (
      advance st;
      let name = expect_ident st in
      match peek st with
      | LBRACKET, _ ->
          advance st;
          let v = parse_value st in
          expect st RBRACKET;
          Ast.Fixed_opaque (name, v)
      | LANGLE, _ -> (
          advance st;
          match peek st with
          | RANGLE, _ ->
              advance st;
              Ast.Var_opaque (name, None)
          | _ ->
              let v = parse_value st in
              expect st RANGLE;
              Ast.Var_opaque (name, Some v))
      | got, pos ->
          fail_at pos "opaque requires [n] or <n>, found %s" (token_to_string got))
  | KW_STRING, _ -> (
      advance st;
      let name = expect_ident st in
      expect st LANGLE;
      match peek st with
      | RANGLE, _ ->
          advance st;
          Ast.String (name, None)
      | _ ->
          let v = parse_value st in
          expect st RANGLE;
          Ast.String (name, Some v))
  | _ -> (
      let ty = parse_type_specifier st in
      match peek st with
      | STAR, _ ->
          advance st;
          Ast.Optional (ty, expect_ident st)
      | _ -> (
          let name = expect_ident st in
          match peek st with
          | LBRACKET, _ ->
              advance st;
              let v = parse_value st in
              expect st RBRACKET;
              Ast.Fixed_array (ty, name, v)
          | LANGLE, _ -> (
              advance st;
              match peek st with
              | RANGLE, _ ->
                  advance st;
                  Ast.Var_array (ty, name, None)
              | _ ->
                  let v = parse_value st in
                  expect st RANGLE;
                  Ast.Var_array (ty, name, Some v))
          | _ -> Ast.Scalar (ty, name)))

let parse_enum_body st =
  expect st LBRACE;
  let rec items acc =
    let name = expect_ident st in
    expect st EQUALS;
    let v = parse_value st in
    let acc = (name, v) :: acc in
    match peek st with
    | COMMA, _ ->
        advance st;
        items acc
    | _ -> List.rev acc
  in
  let l = items [] in
  expect st RBRACE;
  l

let parse_struct_body st =
  expect st LBRACE;
  let rec fields acc =
    match peek st with
    | RBRACE, _ -> List.rev acc
    | _ ->
        let d = parse_declaration st in
        expect st SEMI;
        fields (d :: acc)
  in
  let l = fields [] in
  expect st RBRACE;
  l

let parse_union_body st =
  expect st KW_SWITCH;
  expect st LPAREN;
  let discriminant = parse_declaration st in
  expect st RPAREN;
  expect st LBRACE;
  let rec cases acc default =
    match peek st with
    | KW_CASE, _ ->
        (* one or more "case v:" labels share a declaration *)
        let rec labels acc_v =
          expect st KW_CASE;
          let v = parse_value st in
          expect st COLON;
          match peek st with
          | KW_CASE, _ -> labels (v :: acc_v)
          | _ -> List.rev (v :: acc_v)
        in
        let values = labels [] in
        let d = parse_declaration st in
        expect st SEMI;
        cases ({ Ast.case_values = values; case_decl = d } :: acc) default
    | KW_DEFAULT, pos ->
        if default <> None then fail_at pos "duplicate default case";
        advance st;
        expect st COLON;
        let d = parse_declaration st in
        expect st SEMI;
        cases acc (Some d)
    | RBRACE, _ -> (List.rev acc, default)
    | got, pos ->
        fail_at pos "expected 'case', 'default' or '}', found %s"
          (token_to_string got)
  in
  let case_list, default = cases [] None in
  expect st RBRACE;
  (discriminant, case_list, default)

let parse_proc_result st =
  match peek st with
  | KW_VOID, _ ->
      advance st;
      None
  | _ -> Some (parse_type_specifier st)

let parse_procedure st =
  let result = parse_proc_result st in
  let name = expect_ident st in
  expect st LPAREN;
  let args =
    match peek st with
    | KW_VOID, _ ->
        advance st;
        []
    | _ ->
        let rec loop acc =
          let ty = parse_type_specifier st in
          match peek st with
          | COMMA, _ ->
              advance st;
              loop (ty :: acc)
          | _ -> List.rev (ty :: acc)
        in
        loop []
  in
  expect st RPAREN;
  expect st EQUALS;
  let number = parse_value st in
  expect st SEMI;
  { Ast.proc_name = name; proc_result = result; proc_args = args;
    proc_number = number }

let parse_version st =
  expect st KW_VERSION;
  let name = expect_ident st in
  expect st LBRACE;
  let rec procs acc =
    match peek st with
    | RBRACE, _ -> List.rev acc
    | _ -> procs (parse_procedure st :: acc)
  in
  let procedures = procs [] in
  expect st RBRACE;
  expect st EQUALS;
  let number = parse_value st in
  expect st SEMI;
  { Ast.version_name = name; version_number = number;
    version_procedures = procedures }

let parse_program st =
  let name = expect_ident st in
  expect st LBRACE;
  let rec versions acc =
    match peek st with
    | RBRACE, _ -> List.rev acc
    | _ -> versions (parse_version st :: acc)
  in
  let vs = versions [] in
  expect st RBRACE;
  expect st EQUALS;
  let number = parse_value st in
  expect st SEMI;
  { Ast.program_name = name; program_number = number; program_versions = vs }

let parse_definition st =
  match peek st with
  | KW_CONST, _ ->
      advance st;
      let name = expect_ident st in
      expect st EQUALS;
      let v =
        match peek st with
        | NUMBER n, _ ->
            advance st;
            n
        | got, pos ->
            fail_at pos "const requires a literal, found %s" (token_to_string got)
      in
      expect st SEMI;
      Ast.Const (name, v)
  | KW_ENUM, _ ->
      advance st;
      let name = expect_ident st in
      let items = parse_enum_body st in
      expect st SEMI;
      Ast.Enum { Ast.enum_name = name; enum_items = items }
  | KW_STRUCT, _ ->
      advance st;
      let name = expect_ident st in
      let fields = parse_struct_body st in
      expect st SEMI;
      Ast.Struct { Ast.struct_name = name; struct_fields = fields }
  | KW_UNION, _ ->
      advance st;
      let name = expect_ident st in
      let discriminant, cases, default = parse_union_body st in
      expect st SEMI;
      Ast.Union
        { Ast.union_name = name; union_discriminant = discriminant;
          union_cases = cases; union_default = default }
  | KW_TYPEDEF, _ ->
      advance st;
      let d = parse_declaration st in
      expect st SEMI;
      Ast.Typedef { Ast.typedef_decl = d }
  | KW_PROGRAM, _ ->
      advance st;
      Ast.Program (parse_program st)
  | got, pos -> fail_at pos "expected a definition, found %s" (token_to_string got)

let parse src =
  let st = { tokens = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | EOF, _ -> List.rev acc
    | _ -> loop (parse_definition st :: acc)
  in
  loop []
