(** Hand-written lexer for RPCL source.

    Handles C-style [/* ... */] and line [//] comments, [%]-passthrough
    lines and [#] preprocessor lines (both skipped), decimal / hex / octal
    integer literals, identifiers, keywords and punctuation. Every token
    carries its source position for diagnostics. *)

type token =
  | IDENT of string
  | NUMBER of int64
  | KW_CONST
  | KW_TYPEDEF
  | KW_ENUM
  | KW_STRUCT
  | KW_UNION
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_PROGRAM
  | KW_VERSION
  | KW_VOID
  | KW_OPAQUE
  | KW_STRING
  | KW_INT
  | KW_UNSIGNED
  | KW_HYPER
  | KW_FLOAT
  | KW_DOUBLE
  | KW_BOOL
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LANGLE
  | RANGLE
  | STAR
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | EOF

exception Lex_error of string * Ast.position

val token_to_string : token -> string

val tokenize : string -> (token * Ast.position) list
(** Tokenize a whole RPCL source string; the last element is [EOF]. *)
