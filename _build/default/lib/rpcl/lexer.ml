type token =
  | IDENT of string
  | NUMBER of int64
  | KW_CONST
  | KW_TYPEDEF
  | KW_ENUM
  | KW_STRUCT
  | KW_UNION
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_PROGRAM
  | KW_VERSION
  | KW_VOID
  | KW_OPAQUE
  | KW_STRING
  | KW_INT
  | KW_UNSIGNED
  | KW_HYPER
  | KW_FLOAT
  | KW_DOUBLE
  | KW_BOOL
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LANGLE
  | RANGLE
  | STAR
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | EOF

exception Lex_error of string * Ast.position

let () =
  Printexc.register_printer (function
    | Lex_error (msg, pos) ->
        Some (Format.asprintf "Rpcl.Lexer.Lex_error: %s at %a" msg Ast.pp_position pos)
    | _ -> None)

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER n -> Printf.sprintf "number %Ld" n
  | KW_CONST -> "'const'"
  | KW_TYPEDEF -> "'typedef'"
  | KW_ENUM -> "'enum'"
  | KW_STRUCT -> "'struct'"
  | KW_UNION -> "'union'"
  | KW_SWITCH -> "'switch'"
  | KW_CASE -> "'case'"
  | KW_DEFAULT -> "'default'"
  | KW_PROGRAM -> "'program'"
  | KW_VERSION -> "'version'"
  | KW_VOID -> "'void'"
  | KW_OPAQUE -> "'opaque'"
  | KW_STRING -> "'string'"
  | KW_INT -> "'int'"
  | KW_UNSIGNED -> "'unsigned'"
  | KW_HYPER -> "'hyper'"
  | KW_FLOAT -> "'float'"
  | KW_DOUBLE -> "'double'"
  | KW_BOOL -> "'bool'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LANGLE -> "'<'"
  | RANGLE -> "'>'"
  | STAR -> "'*'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | EQUALS -> "'='"
  | EOF -> "end of input"

let keyword_table =
  [
    ("const", KW_CONST); ("typedef", KW_TYPEDEF); ("enum", KW_ENUM);
    ("struct", KW_STRUCT); ("union", KW_UNION); ("switch", KW_SWITCH);
    ("case", KW_CASE); ("default", KW_DEFAULT); ("program", KW_PROGRAM);
    ("version", KW_VERSION); ("void", KW_VOID); ("opaque", KW_OPAQUE);
    ("string", KW_STRING); ("int", KW_INT); ("unsigned", KW_UNSIGNED);
    ("hyper", KW_HYPER); ("float", KW_FLOAT); ("double", KW_DOUBLE);
    ("bool", KW_BOOL);
    (* 'long' and 'short' appear in real-world .x files as aliases of int *)
    ("long", KW_INT); ("quadruple", KW_DOUBLE);
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let position st = { Ast.line = st.line; col = st.col }

let peek st = if st.pos >= String.length st.src then None else Some st.src.[st.pos]

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '#' | Some '%' ->
      (* preprocessor directive / passthrough line: skip to end of line *)
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when st.pos + 1 < String.length st.src -> (
      match st.src.[st.pos + 1] with
      | '/' ->
          let rec to_eol () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                to_eol ()
          in
          to_eol ();
          skip_trivia st
      | '*' ->
          let start = position st in
          advance st;
          advance st;
          let rec to_close () =
            match peek st with
            | None -> raise (Lex_error ("unterminated comment", start))
            | Some '*' when st.pos + 1 < String.length st.src
                            && st.src.[st.pos + 1] = '/' ->
                advance st;
                advance st
            | Some _ ->
                advance st;
                to_close ()
          in
          to_close ();
          skip_trivia st
      | _ -> ())
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let pos = position st in
  if peek st = Some '-' then advance st;
  let hex =
    peek st = Some '0'
    && st.pos + 1 < String.length st.src
    && (st.src.[st.pos + 1] = 'x' || st.src.[st.pos + 1] = 'X')
  in
  if hex then begin
    advance st;
    advance st
  end;
  let digit_ok c =
    if hex then
      is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    else is_digit c
  in
  let rec consume () =
    match peek st with
    | Some c when digit_ok c ->
        advance st;
        consume ()
    | _ -> ()
  in
  consume ();
  let text = String.sub st.src start (st.pos - start) in
  (* Int64.of_string understands the 0x prefix; '-0x..' needs splicing. *)
  let text =
    if String.length text > 1 && text.[0] = '-' && hex then
      "-0x" ^ String.sub text 3 (String.length text - 3)
    else text
  in
  match Int64.of_string_opt text with
  | Some v -> NUMBER v
  | None -> raise (Lex_error (Printf.sprintf "invalid number %S" text, pos))

let next_token st =
  skip_trivia st;
  let pos = position st in
  match peek st with
  | None -> (EOF, pos)
  | Some c ->
      let tok =
        if is_ident_start c then begin
          let start = st.pos in
          while (match peek st with Some c -> is_ident_char c | None -> false) do
            advance st
          done;
          let text = String.sub st.src start (st.pos - start) in
          match List.assoc_opt text keyword_table with
          | Some kw -> kw
          | None -> IDENT text
        end
        else if is_digit c || (c = '-' && st.pos + 1 < String.length st.src
                               && is_digit st.src.[st.pos + 1]) then
          lex_number st
        else begin
          advance st;
          match c with
          | '{' -> LBRACE
          | '}' -> RBRACE
          | '(' -> LPAREN
          | ')' -> RPAREN
          | '[' -> LBRACKET
          | ']' -> RBRACKET
          | '<' -> LANGLE
          | '>' -> RANGLE
          | '*' -> STAR
          | ',' -> COMMA
          | ';' -> SEMI
          | ':' -> COLON
          | '=' -> EQUALS
          | c ->
              raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
        end
      in
      (tok, pos)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let tok, pos = next_token st in
    if tok = EOF then List.rev ((tok, pos) :: acc)
    else loop ((tok, pos) :: acc)
  in
  loop []
