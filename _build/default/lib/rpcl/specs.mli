(** Built-in RPCL specifications.

    {!cricket} is the Cricket CUDA-forwarding interface: the RPCL
    description of every CUDA API procedure the Cricket server exposes,
    mirroring the role of [cpu_rpc_prot.x] in the original Cricket code
    base. It is the single source of truth: the [cricket] library's
    protocol stubs are generated from it at build time by [rpclgen], so a
    procedure added here becomes callable from client code with no further
    implementation — the property the paper highlights about RPC-Lib. *)

val cricket : string
(** RPCL source of the Cricket GPU-forwarding protocol. *)

val cricket_program_number : int
(** The RPC program number declared in {!cricket} (0x20000001). *)

val cricket_version_number : int

val builtins : (string * string) list
(** Name → source mapping for [rpclgen --builtin]. *)
