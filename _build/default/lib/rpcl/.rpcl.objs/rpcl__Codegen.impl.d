lib/rpcl/codegen.ml: Ast Buffer Check Int64 List Option Printf String
