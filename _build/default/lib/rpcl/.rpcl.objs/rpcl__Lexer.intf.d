lib/rpcl/lexer.mli: Ast
