lib/rpcl/parser.ml: Ast Format Lexer List Printexc
