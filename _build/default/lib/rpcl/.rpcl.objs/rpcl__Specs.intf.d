lib/rpcl/specs.mli:
