lib/rpcl/ast.mli: Format
