lib/rpcl/lexer.ml: Ast Format Int64 List Printexc Printf String
