lib/rpcl/check.mli: Ast
