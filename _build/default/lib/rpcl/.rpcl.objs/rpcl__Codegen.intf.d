lib/rpcl/codegen.mli: Ast Check
