lib/rpcl/check.ml: Ast Format Hashtbl Int64 List Option Printexc Printf
