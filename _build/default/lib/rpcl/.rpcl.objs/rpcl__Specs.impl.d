lib/rpcl/specs.ml:
