lib/rpcl/parser.mli: Ast
