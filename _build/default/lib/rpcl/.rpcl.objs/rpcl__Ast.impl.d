lib/rpcl/ast.ml: Format
