(** Abstract syntax for RPCL, the RPC interface-definition language of
    RFC 5531 (the input language of [rpcgen], and of Cricket's RPC-Lib
    procedural macros). *)

type position = { line : int; col : int }

val pp_position : Format.formatter -> position -> unit

(** Compile-time constant: literal or reference to a [const] definition. *)
type value = Lit of int64 | Named of string

type base_type =
  | Int
  | Uint
  | Hyper
  | Uhyper
  | Float
  | Double
  | Bool
  | Named_type of string  (** typedef/struct/enum/union reference *)

(** A declaration is a named, possibly decorated use of a type — a struct
    field, union arm, typedef body, or union discriminant. *)
type decl =
  | Void
  | Scalar of base_type * string
  | Fixed_array of base_type * string * value
  | Var_array of base_type * string * value option  (** [<>]-style, opt max *)
  | Fixed_opaque of string * value
  | Var_opaque of string * value option
  | String of string * value option
  | Optional of base_type * string  (** [type *name] *)

type enum_def = { enum_name : string; enum_items : (string * value) list }

type struct_def = { struct_name : string; struct_fields : decl list }

type union_case = { case_values : value list; case_decl : decl }

type union_def = {
  union_name : string;
  union_discriminant : decl;
  union_cases : union_case list;
  union_default : decl option;
}

type typedef_def = { typedef_decl : decl }

type procedure_def = {
  proc_name : string;
  proc_result : base_type option;  (** [None] is void *)
  proc_args : base_type list;  (** empty list is void *)
  proc_number : value;
}

type version_def = {
  version_name : string;
  version_number : value;
  version_procedures : procedure_def list;
}

type program_def = {
  program_name : string;
  program_number : value;
  program_versions : version_def list;
}

type definition =
  | Const of string * int64
  | Enum of enum_def
  | Struct of struct_def
  | Union of union_def
  | Typedef of typedef_def
  | Program of program_def

type spec = definition list

val decl_name : decl -> string option
(** The declared identifier, if any ([Void] has none). *)

val pp_base_type : Format.formatter -> base_type -> unit
