type position = { line : int; col : int }

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col

type value = Lit of int64 | Named of string

type base_type =
  | Int
  | Uint
  | Hyper
  | Uhyper
  | Float
  | Double
  | Bool
  | Named_type of string

type decl =
  | Void
  | Scalar of base_type * string
  | Fixed_array of base_type * string * value
  | Var_array of base_type * string * value option
  | Fixed_opaque of string * value
  | Var_opaque of string * value option
  | String of string * value option
  | Optional of base_type * string

type enum_def = { enum_name : string; enum_items : (string * value) list }
type struct_def = { struct_name : string; struct_fields : decl list }
type union_case = { case_values : value list; case_decl : decl }

type union_def = {
  union_name : string;
  union_discriminant : decl;
  union_cases : union_case list;
  union_default : decl option;
}

type typedef_def = { typedef_decl : decl }

type procedure_def = {
  proc_name : string;
  proc_result : base_type option;
  proc_args : base_type list;
  proc_number : value;
}

type version_def = {
  version_name : string;
  version_number : value;
  version_procedures : procedure_def list;
}

type program_def = {
  program_name : string;
  program_number : value;
  program_versions : version_def list;
}

type definition =
  | Const of string * int64
  | Enum of enum_def
  | Struct of struct_def
  | Union of union_def
  | Typedef of typedef_def
  | Program of program_def

type spec = definition list

let decl_name = function
  | Void -> None
  | Scalar (_, n)
  | Fixed_array (_, n, _)
  | Var_array (_, n, _)
  | Fixed_opaque (n, _)
  | Var_opaque (n, _)
  | String (n, _)
  | Optional (_, n) ->
      Some n

let pp_base_type ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Uint -> Format.pp_print_string ppf "unsigned int"
  | Hyper -> Format.pp_print_string ppf "hyper"
  | Uhyper -> Format.pp_print_string ppf "unsigned hyper"
  | Float -> Format.pp_print_string ppf "float"
  | Double -> Format.pp_print_string ppf "double"
  | Bool -> Format.pp_print_string ppf "bool"
  | Named_type s -> Format.pp_print_string ppf s
