(** Semantic analysis for parsed RPCL specifications.

    Validates name resolution and uniqueness rules, and produces an
    environment the code generator consumes:
    - constant names resolve (and are acyclic, since [const] only accepts
      literals);
    - every referenced type name is defined exactly once;
    - enum item names are unique across the spec (they live in a flat
      namespace, as in C);
    - procedure numbers are unique within a version, version numbers within
      a program, and program numbers across the spec. *)

exception Semantic_error of string

type env

val check : Ast.spec -> env
(** Raises {!Semantic_error} on the first violated rule. *)

val spec : env -> Ast.spec
val consts : env -> (string * int64) list
(** All named integer constants, including enum items. *)

val resolve : env -> Ast.value -> int64
(** Resolve a literal or named constant. *)

val find_type : env -> string -> Ast.definition option
(** Look up an [Enum]/[Struct]/[Union]/[Typedef] by declared name. *)

val programs : env -> Ast.program_def list
