(** Recursive-descent parser for RPCL.

    Grammar follows RFC 5531 §12/§13 ("RPC Language") with the common
    rpcgen extensions Cricket's specification uses: [unsigned] as shorthand
    for [unsigned int], multiple procedure arguments, and line
    passthrough/preprocessor directives (handled by the lexer). *)

exception Parse_error of string * Ast.position

val parse : string -> Ast.spec
(** Parse RPCL source text. Raises {!Parse_error} or {!Lexer.Lex_error}. *)
