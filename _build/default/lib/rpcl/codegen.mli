(** OCaml stub generation from a checked RPCL specification — the
    counterpart of RPC-Lib's procedural macros (client side) and rpcgen's
    [-S]/[-C] output (server side).

    For every RPCL type, the generator emits an OCaml type plus
    [xdr_encode_*] / [xdr_decode_*] functions over [Xdr.Encode.t] /
    [Xdr.Decode.t]. For every program version it emits:

    - a [Client] submodule with one typed function per procedure, built on
      [Oncrpc.Client.call] — so a procedure listed in the specification is
      immediately callable, with no hand-written code (the property the
      paper highlights about RPC-Lib);
    - a [Server] submodule with an [implementation] record (one field per
      procedure) and a [register] function that installs handlers on an
      [Oncrpc.Server.t].

    Generated code depends only on the [xdr] and [oncrpc] libraries. *)

val generate : ?source_name:string -> Check.env -> string
(** Generate a complete OCaml compilation unit as text. *)

val ocaml_type_of_base : Ast.base_type -> string
(** Exposed for tests: the OCaml type used for an RPCL base type. *)

val generate_mli : ?source_name:string -> Check.env -> string
(** Generate the matching interface (.mli) for {!generate}'s output: typed
    signatures for every codec, constant, enum item, client stub and server
    registration. Compiling the pair validates that the generator's value
    definitions have exactly their declared types. *)
