exception Semantic_error of string

let () =
  Printexc.register_printer (function
    | Semantic_error msg -> Some ("Rpcl.Check.Semantic_error: " ^ msg)
    | _ -> None)

let fail fmt = Format.kasprintf (fun msg -> raise (Semantic_error msg)) fmt

type env = {
  spec : Ast.spec;
  consts : (string, int64) Hashtbl.t;
  types : (string, Ast.definition) Hashtbl.t;
  programs : Ast.program_def list;
}

let spec env = env.spec

let consts env =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.consts []
  |> List.sort compare

let resolve env = function
  | Ast.Lit n -> n
  | Ast.Named name -> (
      match Hashtbl.find_opt env.consts name with
      | Some v -> v
      | None -> fail "unknown constant %s" name)

let find_type env name = Hashtbl.find_opt env.types name
let programs env = env.programs

let type_name_of_def = function
  | Ast.Enum e -> Some e.Ast.enum_name
  | Ast.Struct s -> Some s.Ast.struct_name
  | Ast.Union u -> Some u.Ast.union_name
  | Ast.Typedef t -> Ast.decl_name t.Ast.typedef_decl
  | Ast.Const _ | Ast.Program _ -> None

let add_const env name v =
  if Hashtbl.mem env.consts name then fail "duplicate constant %s" name;
  Hashtbl.add env.consts name v

let check_base_type env context = function
  | Ast.Named_type name ->
      if not (Hashtbl.mem env.types name) then
        fail "unknown type %s referenced in %s" name context
  | Ast.Int | Ast.Uint | Ast.Hyper | Ast.Uhyper | Ast.Float | Ast.Double
  | Ast.Bool ->
      ()

let check_value env context = function
  | Ast.Lit _ -> ()
  | Ast.Named name ->
      if not (Hashtbl.mem env.consts name) then
        fail "unknown constant %s referenced in %s" name context

let check_decl env context = function
  | Ast.Void -> ()
  | Ast.Scalar (ty, _) | Ast.Optional (ty, _) -> check_base_type env context ty
  | Ast.Fixed_array (ty, _, v) ->
      check_base_type env context ty;
      check_value env context v
  | Ast.Var_array (ty, _, v) ->
      check_base_type env context ty;
      Option.iter (check_value env context) v
  | Ast.Fixed_opaque (_, v) -> check_value env context v
  | Ast.Var_opaque (_, v) | Ast.String (_, v) ->
      Option.iter (check_value env context) v

let check_unique what items =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun key ->
      if Hashtbl.mem seen key then fail "duplicate %s %s" what key;
      Hashtbl.add seen key ())
    items

let check spec =
  let env =
    { spec; consts = Hashtbl.create 64; types = Hashtbl.create 64;
      programs = [] }
  in
  (* pass 1: collect names so forward references work *)
  List.iter
    (fun def ->
      (match def with
      | Ast.Const (name, v) -> add_const env name v
      | Ast.Enum e ->
          List.iter
            (fun (item, v) ->
              match v with
              | Ast.Lit n -> add_const env item n
              | Ast.Named other -> (
                  match Hashtbl.find_opt env.consts other with
                  | Some n -> add_const env item n
                  | None ->
                      fail "enum %s item %s references unknown constant %s"
                        e.Ast.enum_name item other))
            e.Ast.enum_items
      | Ast.Struct _ | Ast.Union _ | Ast.Typedef _ | Ast.Program _ -> ());
      match type_name_of_def def with
      | Some name ->
          if Hashtbl.mem env.types name then fail "duplicate type %s" name;
          Hashtbl.add env.types name def
      | None -> ())
    spec;
  (* pass 2: validate bodies *)
  List.iter
    (fun def ->
      match def with
      | Ast.Const _ -> ()
      | Ast.Enum e ->
          check_unique ("item in enum " ^ e.Ast.enum_name)
            (List.map fst e.Ast.enum_items)
      | Ast.Struct s ->
          let context = "struct " ^ s.Ast.struct_name in
          if s.Ast.struct_fields = [] then fail "%s has no fields" context;
          check_unique ("field in " ^ context)
            (List.filter_map Ast.decl_name s.Ast.struct_fields);
          List.iter (check_decl env context) s.Ast.struct_fields
      | Ast.Union u ->
          let context = "union " ^ u.Ast.union_name in
          check_decl env context u.Ast.union_discriminant;
          (match u.Ast.union_discriminant with
          | Ast.Scalar ((Ast.Int | Ast.Uint | Ast.Bool), _) -> ()
          | Ast.Scalar (Ast.Named_type name, _) -> (
              match find_type env name with
              | Some (Ast.Enum _) -> ()
              | _ ->
                  fail "%s: discriminant type %s is not an enum" context name)
          | _ -> fail "%s: discriminant must be int, unsigned, bool or enum" context);
          List.iter
            (fun c ->
              List.iter (check_value env context) c.Ast.case_values;
              check_decl env context c.Ast.case_decl)
            u.Ast.union_cases;
          Option.iter (check_decl env context) u.Ast.union_default;
          check_unique ("case value in " ^ context)
            (List.concat_map
               (fun c ->
                 List.map
                   (fun v -> Int64.to_string (resolve env v))
                   c.Ast.case_values)
               u.Ast.union_cases)
      | Ast.Typedef t -> (
          check_decl env "typedef" t.Ast.typedef_decl;
          match t.Ast.typedef_decl with
          | Ast.Void -> fail "typedef of void"
          | _ -> ())
      | Ast.Program p ->
          let context = "program " ^ p.Ast.program_name in
          check_unique ("version number in " ^ context)
            (List.map
               (fun v -> Int64.to_string (resolve env v.Ast.version_number))
               p.Ast.program_versions);
          List.iter
            (fun v ->
              let vcontext =
                Printf.sprintf "%s version %s" context v.Ast.version_name
              in
              check_unique ("procedure number in " ^ vcontext)
                (List.map
                   (fun pr -> Int64.to_string (resolve env pr.Ast.proc_number))
                   v.Ast.version_procedures);
              check_unique ("procedure name in " ^ vcontext)
                (List.map (fun pr -> pr.Ast.proc_name) v.Ast.version_procedures);
              List.iter
                (fun pr ->
                  Option.iter (check_base_type env vcontext) pr.Ast.proc_result;
                  List.iter (check_base_type env vcontext) pr.Ast.proc_args;
                  check_value env vcontext pr.Ast.proc_number)
                v.Ast.version_procedures)
            p.Ast.program_versions)
    spec;
  let programs =
    List.filter_map (function Ast.Program p -> Some p | _ -> None) spec
  in
  check_unique "program number"
    (List.map
       (fun p ->
         Int64.to_string
           (resolve { env with programs = [] } p.Ast.program_number))
       programs);
  { env with programs }
