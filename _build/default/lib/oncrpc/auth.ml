type flavor = Auth_none | Auth_sys | Auth_short | Auth_other of int

let flavor_code = function
  | Auth_none -> 0
  | Auth_sys -> 1
  | Auth_short -> 2
  | Auth_other n -> n

let flavor_of_code = function
  | 0 -> Auth_none
  | 1 -> Auth_sys
  | 2 -> Auth_short
  | n -> Auth_other n

type t = { flavor : flavor; body : bytes }

let max_body_length = 400
let none = { flavor = Auth_none; body = Bytes.empty }

type sys_params = {
  stamp : int32;
  machinename : string;
  uid : int;
  gid : int;
  gids : int list;
}

let sys p =
  if String.length p.machinename > 255 then
    invalid_arg "Auth.sys: machinename too long";
  if List.length p.gids > 16 then invalid_arg "Auth.sys: too many gids";
  let enc = Xdr.Encode.create () in
  Xdr.Encode.int32 enc p.stamp;
  Xdr.Encode.string ~max:255 enc p.machinename;
  Xdr.Encode.uint enc p.uid;
  Xdr.Encode.uint enc p.gid;
  Xdr.Encode.list ~max:16 enc Xdr.Encode.uint p.gids;
  { flavor = Auth_sys; body = Xdr.Encode.to_bytes enc }

let sys_params t =
  if t.flavor <> Auth_sys then invalid_arg "Auth.sys_params: not AUTH_SYS";
  let dec = Xdr.Decode.of_bytes t.body in
  let stamp = Xdr.Decode.int32 dec in
  let machinename = Xdr.Decode.string ~max:255 dec in
  let uid = Xdr.Decode.uint dec in
  let gid = Xdr.Decode.uint dec in
  let gids = Xdr.Decode.list ~max:16 dec Xdr.Decode.uint in
  Xdr.Decode.finish dec;
  { stamp; machinename; uid; gid; gids }

let encode enc t =
  if Bytes.length t.body > max_body_length then
    invalid_arg "Auth.encode: body exceeds 400 bytes";
  Xdr.Encode.int enc (flavor_code t.flavor);
  Xdr.Encode.opaque ~max:max_body_length enc t.body

let decode dec =
  let flavor = flavor_of_code (Xdr.Decode.int dec) in
  let body = Xdr.Decode.opaque ~max:max_body_length dec in
  { flavor; body }
