(** Minimal portmapper (RFC 1833 version 2 subset, program 100000).

    Cricket clients conventionally locate the server's RPC program through
    the portmapper. We implement the subset used for that: SET, UNSET,
    GETPORT, DUMP, and the NULL procedure. The registry is in-memory and can
    be attached to any {!Server.t}. *)

val program : int
(** 100000. *)

val version : int
(** 2. *)

(** Procedure numbers. *)
module Proc : sig
  val null : int
  val set : int
  val unset : int
  val getport : int
  val dump : int
end

type mapping = { prog : int; vers : int; prot : int; port : int }

val prot_tcp : int
(** IPPROTO_TCP = 6. *)

val prot_udp : int
(** IPPROTO_UDP = 17. *)

type t
(** The registry. *)

val create : unit -> t

val set : t -> mapping -> bool
(** Register; false if an identical (prog,vers,prot) entry exists. *)

val unset : t -> prog:int -> vers:int -> bool
val getport : t -> prog:int -> vers:int -> prot:int -> int
(** 0 when unregistered, per the protocol. *)

val dump : t -> mapping list

val attach : t -> Server.t -> unit
(** Register the portmapper service on an RPC server. *)

(** {1 Client-side helpers} *)

val remote_getport :
  Client.t -> prog:int -> vers:int -> prot:int -> int
(** Query a remote portmapper through an existing client bound to
    [program]/[version]. *)
