(** RPC message structures and codecs (RFC 5531 §9).

    A message is a header followed by a procedure-specific payload (call
    arguments or reply results). The codecs here handle only the header; the
    payload is appended to / decoded from the same XDR stream by the caller,
    exactly as generated rpcgen code does. *)

val rpc_version : int
(** Always 2. *)

type auth_stat =
  | Auth_badcred
  | Auth_rejectedcred
  | Auth_badverf
  | Auth_rejectedverf
  | Auth_tooweak
  | Auth_invalidresp
  | Auth_failed

val auth_stat_code : auth_stat -> int
val auth_stat_of_code : int -> auth_stat

type call = {
  prog : int;
  vers : int;
  proc : int;
  cred : Auth.t;
  verf : Auth.t;
}

type mismatch_info = { low : int; high : int }

(** Why a call was accepted-but-failed, per [accept_stat]. [Success] carries
    no payload here; results follow in the stream. *)
type accept_stat =
  | Success
  | Prog_unavail
  | Prog_mismatch of mismatch_info
  | Proc_unavail
  | Garbage_args
  | System_err

type accepted = { verf : Auth.t; stat : accept_stat }

type rejected = Rpc_mismatch of mismatch_info | Auth_error of auth_stat

type reply = Accepted of accepted | Denied of rejected

type body = Call of call | Reply of reply

type t = { xid : int32; body : body }

val encode : Xdr.Encode.t -> t -> unit
(** Encode the header; the payload (args/results) must be appended by the
    caller when [body] is a [Call] or an [Accepted]/[Success] reply. *)

val decode : Xdr.Decode.t -> t
(** Decode the header, leaving the decoder positioned at the payload. *)

(** {1 Convenience constructors} *)

val call : ?cred:Auth.t -> ?verf:Auth.t -> xid:int32 -> prog:int -> vers:int ->
  proc:int -> unit -> t

val reply_success : ?verf:Auth.t -> xid:int32 -> unit -> t
val reply_error : xid:int32 -> accept_stat -> t
val reply_denied : xid:int32 -> rejected -> t

val pp_accept_stat : Format.formatter -> accept_stat -> unit
val pp_rejected : Format.formatter -> rejected -> unit
