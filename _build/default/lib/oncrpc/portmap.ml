let program = 100000
let version = 2

module Proc = struct
  let null = 0
  let set = 1
  let unset = 2
  let getport = 3
  let dump = 4
end

type mapping = { prog : int; vers : int; prot : int; port : int }

let prot_tcp = 6
let prot_udp = 17

type t = { mutable mappings : mapping list }

let create () = { mappings = [] }

let same_key a b = a.prog = b.prog && a.vers = b.vers && a.prot = b.prot

let set t m =
  if List.exists (same_key m) t.mappings then false
  else begin
    t.mappings <- m :: t.mappings;
    true
  end

let unset t ~prog ~vers =
  let before = List.length t.mappings in
  t.mappings <-
    List.filter (fun m -> not (m.prog = prog && m.vers = vers)) t.mappings;
  List.length t.mappings <> before

let getport t ~prog ~vers ~prot =
  match
    List.find_opt
      (fun m -> m.prog = prog && m.vers = vers && m.prot = prot)
      t.mappings
  with
  | Some m -> m.port
  | None -> 0

let dump t = List.rev t.mappings

let decode_mapping dec =
  let prog = Xdr.Decode.uint dec in
  let vers = Xdr.Decode.uint dec in
  let prot = Xdr.Decode.uint dec in
  let port = Xdr.Decode.uint dec in
  { prog; vers; prot; port }

let encode_mapping enc m =
  Xdr.Encode.uint enc m.prog;
  Xdr.Encode.uint enc m.vers;
  Xdr.Encode.uint enc m.prot;
  Xdr.Encode.uint enc m.port

let attach t server =
  Server.register server ~prog:program ~vers:version
    [
      ( Proc.set,
        fun dec enc ->
          let m = decode_mapping dec in
          Xdr.Encode.bool enc (set t m) );
      ( Proc.unset,
        fun dec enc ->
          let m = decode_mapping dec in
          Xdr.Encode.bool enc (unset t ~prog:m.prog ~vers:m.vers) );
      ( Proc.getport,
        fun dec enc ->
          let m = decode_mapping dec in
          Xdr.Encode.uint enc (getport t ~prog:m.prog ~vers:m.vers ~prot:m.prot)
      );
      ( Proc.dump,
        fun dec enc ->
          Xdr.Decode.void dec;
          (* The wire format is a linked list: bool "more" then entry. *)
          List.iter
            (fun m ->
              Xdr.Encode.bool enc true;
              encode_mapping enc m)
            (dump t);
          Xdr.Encode.bool enc false );
    ]

let remote_getport client ~prog ~vers ~prot =
  Client.call client ~proc:Proc.getport
    (fun enc -> encode_mapping enc { prog; vers; prot; port = 0 })
    Xdr.Decode.uint
