let rpc_version = 2

type auth_stat =
  | Auth_badcred
  | Auth_rejectedcred
  | Auth_badverf
  | Auth_rejectedverf
  | Auth_tooweak
  | Auth_invalidresp
  | Auth_failed

let auth_stat_code = function
  | Auth_badcred -> 1
  | Auth_rejectedcred -> 2
  | Auth_badverf -> 3
  | Auth_rejectedverf -> 4
  | Auth_tooweak -> 5
  | Auth_invalidresp -> 6
  | Auth_failed -> 7

let auth_stat_of_code = function
  | 1 -> Auth_badcred
  | 2 -> Auth_rejectedcred
  | 3 -> Auth_badverf
  | 4 -> Auth_rejectedverf
  | 5 -> Auth_tooweak
  | 6 -> Auth_invalidresp
  | _ -> Auth_failed

type call = {
  prog : int;
  vers : int;
  proc : int;
  cred : Auth.t;
  verf : Auth.t;
}

type mismatch_info = { low : int; high : int }

type accept_stat =
  | Success
  | Prog_unavail
  | Prog_mismatch of mismatch_info
  | Proc_unavail
  | Garbage_args
  | System_err

type accepted = { verf : Auth.t; stat : accept_stat }
type rejected = Rpc_mismatch of mismatch_info | Auth_error of auth_stat
type reply = Accepted of accepted | Denied of rejected
type body = Call of call | Reply of reply
type t = { xid : int32; body : body }

(* msg_type *)
let msg_call = 0
let msg_reply = 1

(* reply_stat *)
let msg_accepted = 0
let msg_denied = 1

let encode enc t =
  Xdr.Encode.uint32 enc t.xid;
  match t.body with
  | Call c ->
      Xdr.Encode.int enc msg_call;
      Xdr.Encode.uint enc rpc_version;
      Xdr.Encode.uint enc c.prog;
      Xdr.Encode.uint enc c.vers;
      Xdr.Encode.uint enc c.proc;
      Auth.encode enc c.cred;
      Auth.encode enc c.verf
  | Reply (Accepted a) -> begin
      Xdr.Encode.int enc msg_reply;
      Xdr.Encode.int enc msg_accepted;
      Auth.encode enc a.verf;
      match a.stat with
      | Success -> Xdr.Encode.int enc 0
      | Prog_unavail -> Xdr.Encode.int enc 1
      | Prog_mismatch { low; high } ->
          Xdr.Encode.int enc 2;
          Xdr.Encode.uint enc low;
          Xdr.Encode.uint enc high
      | Proc_unavail -> Xdr.Encode.int enc 3
      | Garbage_args -> Xdr.Encode.int enc 4
      | System_err -> Xdr.Encode.int enc 5
    end
  | Reply (Denied d) -> begin
      Xdr.Encode.int enc msg_reply;
      Xdr.Encode.int enc msg_denied;
      match d with
      | Rpc_mismatch { low; high } ->
          Xdr.Encode.int enc 0;
          Xdr.Encode.uint enc low;
          Xdr.Encode.uint enc high
      | Auth_error stat ->
          Xdr.Encode.int enc 1;
          Xdr.Encode.int enc (auth_stat_code stat)
    end

let decode_accept_stat dec =
  match Xdr.Decode.int dec with
  | 0 -> Success
  | 1 -> Prog_unavail
  | 2 ->
      let low = Xdr.Decode.uint dec in
      let high = Xdr.Decode.uint dec in
      Prog_mismatch { low; high }
  | 3 -> Proc_unavail
  | 4 -> Garbage_args
  | 5 -> System_err
  | n -> Xdr.Types.fail (Xdr.Types.Invalid_union (Int32.of_int n))

let decode dec =
  let xid = Xdr.Decode.uint32 dec in
  let mtype = Xdr.Decode.int dec in
  if mtype = msg_call then begin
    let rpcvers = Xdr.Decode.uint dec in
    if rpcvers <> rpc_version then
      Xdr.Types.fail (Xdr.Types.Invalid_enum (Int32.of_int rpcvers));
    let prog = Xdr.Decode.uint dec in
    let vers = Xdr.Decode.uint dec in
    let proc = Xdr.Decode.uint dec in
    let cred = Auth.decode dec in
    let verf = Auth.decode dec in
    { xid; body = Call { prog; vers; proc; cred; verf } }
  end
  else if mtype = msg_reply then begin
    let rstat = Xdr.Decode.int dec in
    if rstat = msg_accepted then begin
      let verf = Auth.decode dec in
      let stat = decode_accept_stat dec in
      { xid; body = Reply (Accepted { verf; stat }) }
    end
    else if rstat = msg_denied then begin
      match Xdr.Decode.int dec with
      | 0 ->
          let low = Xdr.Decode.uint dec in
          let high = Xdr.Decode.uint dec in
          { xid; body = Reply (Denied (Rpc_mismatch { low; high })) }
      | 1 ->
          let stat = auth_stat_of_code (Xdr.Decode.int dec) in
          { xid; body = Reply (Denied (Auth_error stat)) }
      | n -> Xdr.Types.fail (Xdr.Types.Invalid_union (Int32.of_int n))
    end
    else Xdr.Types.fail (Xdr.Types.Invalid_union (Int32.of_int rstat))
  end
  else Xdr.Types.fail (Xdr.Types.Invalid_union (Int32.of_int mtype))

let call ?(cred = Auth.none) ?(verf = Auth.none) ~xid ~prog ~vers ~proc () =
  { xid; body = Call { prog; vers; proc; cred; verf } }

let reply_success ?(verf = Auth.none) ~xid () =
  { xid; body = Reply (Accepted { verf; stat = Success }) }

let reply_error ~xid stat =
  { xid; body = Reply (Accepted { verf = Auth.none; stat }) }

let reply_denied ~xid rejected = { xid; body = Reply (Denied rejected) }

let pp_accept_stat ppf = function
  | Success -> Format.pp_print_string ppf "SUCCESS"
  | Prog_unavail -> Format.pp_print_string ppf "PROG_UNAVAIL"
  | Prog_mismatch { low; high } ->
      Format.fprintf ppf "PROG_MISMATCH(low=%d,high=%d)" low high
  | Proc_unavail -> Format.pp_print_string ppf "PROC_UNAVAIL"
  | Garbage_args -> Format.pp_print_string ppf "GARBAGE_ARGS"
  | System_err -> Format.pp_print_string ppf "SYSTEM_ERR"

let pp_rejected ppf = function
  | Rpc_mismatch { low; high } ->
      Format.fprintf ppf "RPC_MISMATCH(low=%d,high=%d)" low high
  | Auth_error s -> Format.fprintf ppf "AUTH_ERROR(%d)" (auth_stat_code s)
