lib/oncrpc/client.mli: Auth Message Transport Xdr
