lib/oncrpc/portmap.ml: Client List Server Xdr
