lib/oncrpc/client.ml: Auth Format Int32 Message Printexc Record String Transport Xdr
