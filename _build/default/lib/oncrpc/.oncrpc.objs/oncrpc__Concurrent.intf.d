lib/oncrpc/concurrent.mli: Transport Xdr
