lib/oncrpc/transport.mli: Unix
