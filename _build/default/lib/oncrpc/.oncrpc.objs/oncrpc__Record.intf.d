lib/oncrpc/record.mli: Transport
