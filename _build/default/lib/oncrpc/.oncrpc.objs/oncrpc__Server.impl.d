lib/oncrpc/server.ml: Auth Hashtbl List Logs Message Printexc Printf Record Thread Transport Unix Xdr
