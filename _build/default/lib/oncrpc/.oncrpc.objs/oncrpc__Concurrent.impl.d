lib/oncrpc/concurrent.ml: Client Condition Fun Hashtbl Int32 Message Mutex Record Thread Transport Xdr
