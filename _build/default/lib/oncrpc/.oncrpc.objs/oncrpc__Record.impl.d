lib/oncrpc/record.ml: Buffer Bytes Char String Transport
