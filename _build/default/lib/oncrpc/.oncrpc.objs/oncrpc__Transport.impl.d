lib/oncrpc/transport.ml: Buffer Bytes Condition Mutex Printexc Printf String Unix
