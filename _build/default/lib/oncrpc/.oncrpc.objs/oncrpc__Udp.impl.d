lib/oncrpc/udp.ml: Array Bytes Client Int32 Message Printexc Server String Thread Unix Xdr
