lib/oncrpc/udp.mli: Server Xdr
