lib/oncrpc/server.mli: Auth Message Transport Xdr
