lib/oncrpc/portmap.mli: Client Server
