lib/oncrpc/message.mli: Auth Format Xdr
