lib/oncrpc/auth.ml: Bytes List String Xdr
