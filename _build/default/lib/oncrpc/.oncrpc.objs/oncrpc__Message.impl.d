lib/oncrpc/message.ml: Auth Format Int32 Xdr
