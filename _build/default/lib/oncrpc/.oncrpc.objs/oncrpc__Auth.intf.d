lib/oncrpc/auth.mli: Xdr
