(** RPC authentication (RFC 5531 §8–9).

    Only the flavors Cricket uses are fully modelled: [AUTH_NONE] (the
    default) and [AUTH_SYS] (RFC 5531 appendix A). Unknown flavors are
    carried opaquely so a server can reject them with [AUTH_BADCRED] instead
    of failing to parse the message. *)

type flavor = Auth_none | Auth_sys | Auth_short | Auth_other of int

val flavor_code : flavor -> int
val flavor_of_code : int -> flavor

type t = { flavor : flavor; body : bytes }
(** An [opaque_auth]: flavor discriminant plus up to 400 bytes of body. *)

val max_body_length : int
(** 400, per RFC 5531. *)

val none : t
(** [AUTH_NONE] with an empty body. *)

type sys_params = {
  stamp : int32;
  machinename : string;  (** max 255 bytes *)
  uid : int;
  gid : int;
  gids : int list;  (** max 16 entries *)
}
(** The [authsys_parms] structure. *)

val sys : sys_params -> t
(** Build an [AUTH_SYS] credential from parameters. *)

val sys_params : t -> sys_params
(** Parse an [AUTH_SYS] body. Raises [Xdr.Types.Error] on malformed body or
    [Invalid_argument] if the flavor is not [Auth_sys]. *)

val encode : Xdr.Encode.t -> t -> unit
val decode : Xdr.Decode.t -> t
