(** Thread-safe ONC RPC client with concurrent outstanding calls.

    The plain {!Client} is synchronous — one call at a time, like RPC-Lib.
    libtirpc additionally supports several threads sharing one connection
    with interleaved replies matched by transaction id; this module
    provides that: senders serialize on a lock, a dedicated receiver thread
    demultiplexes replies to per-call mailboxes, and calls from any number
    of threads proceed concurrently.

    Used by the tests to demonstrate that reply matching by xid is what
    makes connection sharing sound (replies may arrive in any order). *)

type t

val create : transport:Transport.t -> prog:int -> vers:int -> unit -> t
(** Spawns the receiver thread. *)

val call :
  t -> proc:int -> (Xdr.Encode.t -> unit) -> (Xdr.Decode.t -> 'a) -> 'a
(** Semantics of {!Client.call}; safe from any thread. Raises
    {!Client.Rpc_error} on protocol failures and {!Transport.Closed} if the
    connection dies while the call is outstanding. *)

val outstanding : t -> int
(** Calls currently awaiting replies. *)

val close : t -> unit
(** Close the transport and fail all outstanding calls with
    {!Transport.Closed}; joins the receiver thread. *)
