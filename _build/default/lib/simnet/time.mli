(** Virtual time for the discrete-event simulation.

    Time is an [int64] count of nanoseconds since simulation start. All
    benchmark results in this repository are differences of virtual
    timestamps, which makes them bit-for-bit deterministic across runs and
    machines. *)

type t = int64
(** Nanoseconds. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val of_float_ns : float -> t
(** Round a float nanosecond quantity (cost-model output) to a tick. *)

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val to_float_s : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)
