type breakdown = {
  packets : int;
  sender_cpu_ns : float;
  wire_ns : float;
  receiver_cpu_ns : float;
  total : Time.t;
}

let ceil_div a b = (a + b - 1) / b

(* Socket reads/writes move data in 64 KiB chunks (the size RPC-Lib and
   libtirpc use for their buffers). *)
let io_chunk = 65_536

let sender_cpu (p : Hostprofile.t) ~packets n =
  let syscalls = max 1 (ceil_div n io_chunk) in
  (* With TSO the guest stack processes 64 KiB super-frames and rings the
     doorbell per super-frame; without it, per TCP segment. *)
  let frames =
    if p.offloads.Offload.tso then max 1 (ceil_div n io_chunk) else packets
  in
  let kicks = max 1 (ceil_div frames p.kick_batch) in
  let copies =
    p.tx_copies
    +. (if p.offloads.Offload.scatter_gather then 0.0 else 0.5)
  in
  Float.of_int (syscalls * (p.syscall_ns + p.context_switch_ns))
  +. (Float.of_int n *. p.copy_ns_per_byte *. copies)
  +. (if p.offloads.Offload.tx_checksum then 0.0
      else Float.of_int n *. p.checksum_ns_per_byte)
  +. Float.of_int (frames * p.per_packet_tx_ns)
  +. (if p.virtualized then Float.of_int (kicks * p.vmexit_ns) else 0.0)

let receiver_cpu (p : Hostprofile.t) ~packets n =
  let irq_batch =
    if p.offloads.Offload.mrg_rxbuf then p.irq_batch * 4 else p.irq_batch
  in
  let irqs = max 1 (ceil_div packets irq_batch) in
  let syscalls = max 1 (ceil_div n io_chunk) in
  Float.of_int
    (irqs * (p.interrupt_ns + if p.virtualized then p.vmexit_ns else 0))
  +. Float.of_int p.wakeup_ns
  (* GRO/LRO: the stack sees one aggregate per ~8 wire packets *)
  +. (let rx_units =
        if p.offloads.Offload.gro then max 1 (ceil_div packets 8) else packets
      in
      Float.of_int (rx_units * p.per_packet_rx_ns))
  +. (if p.offloads.Offload.rx_checksum then 0.0
      else Float.of_int n *. p.checksum_ns_per_byte)
  +. (Float.of_int n *. p.copy_ns_per_byte *. p.rx_copies)
  +. Float.of_int (syscalls * (p.syscall_ns + p.context_switch_ns))

let one_way ~sender ~receiver ~link n =
  if n < 0 then invalid_arg "Netcost.one_way: negative size";
  let packets = max 1 (ceil_div n (Link.mss link)) in
  let s = sender_cpu sender ~packets n in
  let w = Link.serialize_ns link ~payload:n ~packets in
  let r = receiver_cpu receiver ~packets n in
  let latency = Float.of_int link.Link.latency_ns in
  let total_ns =
    if packets = 1 then latency +. s +. w +. r
    else begin
      (* pipeline: one packet through each stage, then the bottleneck *)
      let fp = Float.of_int packets in
      let per_pkt_s = s /. fp and per_pkt_w = w /. fp and per_pkt_r = r /. fp in
      let bottleneck = Float.max per_pkt_s (Float.max per_pkt_w per_pkt_r) in
      latency +. per_pkt_s +. per_pkt_w +. per_pkt_r
      +. ((fp -. 1.0) *. bottleneck)
    end
  in
  { packets; sender_cpu_ns = s; wire_ns = w; receiver_cpu_ns = r;
    total = Time.of_float_ns total_ns }

let one_way_time ~sender ~receiver ~link n =
  (one_way ~sender ~receiver ~link n).total

let throughput_bytes_per_s ~sender ~receiver ~link n =
  let b = one_way ~sender ~receiver ~link n in
  Float.of_int n /. Time.to_float_s b.total
