type buffer = { id : int; capacity : int; mutable written : int }

type stats = { kicks : int; interrupts : int; delivered : int; dropped : int }

type t = {
  ring_size : int;
  avail : buffer Queue.t;  (* posted by guest, not yet consumed by host *)
  used : buffer Queue.t;  (* completed by host, not yet reaped by guest *)
  mutable next_id : int;
  mutable notifications_suppressed : bool;  (* host side: no kicks needed *)
  mutable interrupts_suppressed : bool;  (* guest side: no interrupts *)
  mutable kicks : int;
  mutable interrupts : int;
  mutable delivered : int;
  mutable dropped : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~size =
  if not (is_power_of_two size) || size < 8 || size > 32768 then
    invalid_arg "Virtio.create: size must be a power of two in [8, 32768]";
  {
    ring_size = size;
    avail = Queue.create ();
    used = Queue.create ();
    next_id = 0;
    notifications_suppressed = false;
    interrupts_suppressed = false;
    kicks = 0;
    interrupts = 0;
    delivered = 0;
    dropped = 0;
  }

let size t = t.ring_size
let available t = Queue.length t.avail

let in_flight t = Queue.length t.avail + Queue.length t.used

let guest_post t capacity =
  if capacity <= 0 then invalid_arg "Virtio.guest_post: capacity";
  if in_flight t >= t.ring_size then false
  else begin
    Queue.add { id = t.next_id; capacity; written = 0 } t.avail;
    t.next_id <- t.next_id + 1;
    if not t.notifications_suppressed then t.kicks <- t.kicks + 1;
    true
  end

let guest_collect t =
  let rec drain acc =
    match Queue.take_opt t.used with
    | None -> List.rev acc
    | Some b -> drain ((b.id, b.written) :: acc)
  in
  drain []

let guest_suppress_interrupts t v = t.interrupts_suppressed <- v
let host_suppress_notifications t v = t.notifications_suppressed <- v

let raise_interrupt t =
  if not t.interrupts_suppressed then t.interrupts <- t.interrupts + 1

let host_deliver t ~len ~mergeable =
  if len <= 0 then invalid_arg "Virtio.host_deliver: len";
  if mergeable then begin
    (* Plan across consecutive buffers (all-or-nothing), then commit. *)
    let bufs = List.rev (Queue.fold (fun acc b -> b :: acc) [] t.avail) in
    let rec plan needed count = function
      | [] -> if needed <= 0 then Some count else None
      | b :: rest ->
          if needed <= 0 then Some count
          else plan (needed - b.capacity) (count + 1) rest
    in
    match plan len 0 bufs with
    | None ->
        t.dropped <- t.dropped + 1;
        None
    | Some count ->
        let remaining = ref len in
        for _ = 1 to count do
          let b = Queue.take t.avail in
          b.written <- min b.capacity !remaining;
          remaining := !remaining - b.written;
          Queue.add b t.used
        done;
        t.delivered <- t.delivered + 1;
        raise_interrupt t;
        Some count
  end
  else begin
    match Queue.peek_opt t.avail with
    | Some b when b.capacity >= len ->
        let b = Queue.take t.avail in
        b.written <- len;
        Queue.add b t.used;
        t.delivered <- t.delivered + 1;
        raise_interrupt t;
        Some 1
    | Some _ | None ->
        t.dropped <- t.dropped + 1;
        None
  end

let stats t =
  { kicks = t.kicks; interrupts = t.interrupts; delivered = t.delivered;
    dropped = t.dropped }

let reset_stats t =
  t.kicks <- 0;
  t.interrupts <- 0;
  t.delivered <- 0;
  t.dropped <- 0
