type t = {
  name : string;
  virtualized : bool;
  syscall_ns : int;
  context_switch_ns : int;
  wakeup_ns : int;
  vmexit_ns : int;
  kick_batch : int;
  irq_batch : int;
  copy_ns_per_byte : float;
  tx_copies : float;
  rx_copies : float;
  checksum_ns_per_byte : float;
  per_packet_tx_ns : int;
  per_packet_rx_ns : int;
  interrupt_ns : int;
  offloads : Offload.t;
}

let bare_metal_linux =
  {
    name = "native-linux";
    virtualized = false;
    syscall_ns = 1_500;
    context_switch_ns = 0;
    wakeup_ns = 3_000;
    vmexit_ns = 0;
    kick_batch = 1;
    irq_batch = 16;
    copy_ns_per_byte = 0.08;
    tx_copies = 1.0;
    rx_copies = 1.0;
    checksum_ns_per_byte = 0.25;
    per_packet_tx_ns = 250;
    per_packet_rx_ns = 150;
    interrupt_ns = 5_000;
    offloads = Offload.all;
  }

let with_offloads t offloads = { t with offloads }

let pp ppf t =
  Format.fprintf ppf "%s%s %a" t.name
    (if t.virtualized then " (virtualized)" else "")
    Offload.pp t.offloads
