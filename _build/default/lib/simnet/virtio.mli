(** Split-virtqueue model (virtio 1.x).

    Models the guest/host ring protocol that underlies virtio-net in QEMU:
    a descriptor ring with an available index (guest → host) and a used
    index (host → guest), doorbell "kicks" with host-side notification
    suppression, interrupt suppression on the guest side, and — for receive
    queues — the VIRTIO_NET_F_MRG_RXBUF behaviour where one packet may span
    several guest-posted buffers instead of requiring a single buffer large
    enough for the whole frame.

    The unikernel network-stack work the paper describes (merging receive
    buffers, fewer internal copies) acts exactly at this layer; the tests
    use this model to check the mechanisms that the {!Netcost} closed form
    charges for: number of kicks, number of interrupts, and buffer
    utilisation with and without mergeable buffers. *)

type t

val create : size:int -> t
(** A virtqueue with [size] descriptors ([size] must be a power of two,
    8 ≤ size ≤ 32768, per the virtio spec). *)

val size : t -> int
val available : t -> int
(** Buffers currently posted by the guest and not yet consumed. *)

(** {1 Guest side} *)

val guest_post : t -> int -> bool
(** Post one buffer of the given byte capacity. Returns [false] when the
    ring is full. Automatically kicks the host unless the host has
    suppressed notifications (the kick is counted in {!stats}). *)

val guest_collect : t -> (int * int) list
(** Reap completed buffers: a list of [(descriptor_id, written_len)],
    oldest first, emptying the used ring. *)

val guest_suppress_interrupts : t -> bool -> unit

(** {1 Host side} *)

val host_suppress_notifications : t -> bool -> unit

val host_deliver : t -> len:int -> mergeable:bool -> int option
(** Write one [len]-byte packet into guest buffers. With [mergeable:true]
    the packet may span consecutive buffers; without, it needs a single
    buffer of at least [len] bytes. Returns the number of buffers consumed,
    or [None] if the queue cannot hold the packet (packet dropped).
    Raises a guest interrupt unless suppressed (counted in {!stats}). *)

(** {1 Instrumentation} *)

type stats = {
  kicks : int;  (** guest → host doorbells actually rung *)
  interrupts : int;  (** host → guest interrupts actually raised *)
  delivered : int;  (** packets successfully delivered *)
  dropped : int;  (** packets that found no buffer *)
}

val stats : t -> stats
val reset_stats : t -> unit
