(** Calibrated analytic cost model for one network message.

    Computes the virtual time taken to move an [n]-byte message from a
    sender host to a receiver host over a link, given both hosts' cost
    profiles ({!Hostprofile.t}) and negotiated offloads. The model is a
    standard three-stage pipeline (sender CPU → wire → receiver CPU):

    - each stage's total cost over the whole message is computed from the
      profile (syscalls, copies, software checksums, per-segment
      processing, VM exits for kicks and interrupt injection, coalesced
      interrupts);
    - a single-packet message pays all three stages serially;
    - a multi-packet message pays one packet through every stage plus
      [(packets - 1)] times the bottleneck stage — so bulk throughput is
      set by the slowest stage, which is how the paper's single-threaded
      RPC-argument transfer path behaves ("bound by the CPU's single-core
      performance").

    The full TCP state machine in [tcpstack] exists to validate this
    model's segmentation/acknowledgement behaviour; the benchmarks use this
    closed form so that 100 000-call experiments run instantly. *)

type breakdown = {
  packets : int;  (** on-wire TCP segments *)
  sender_cpu_ns : float;  (** total sender-side CPU time *)
  wire_ns : float;  (** total serialization time (excl. latency) *)
  receiver_cpu_ns : float;  (** total receiver-side CPU time *)
  total : Time.t;  (** pipelined end-to-end one-way time *)
}

val one_way :
  sender:Hostprofile.t -> receiver:Hostprofile.t -> link:Link.t -> int ->
  breakdown
(** Cost of one [n]-byte message ([n >= 0]; [n = 0] still pays fixed
    costs for a header-only packet). *)

val one_way_time :
  sender:Hostprofile.t -> receiver:Hostprofile.t -> link:Link.t -> int ->
  Time.t

val throughput_bytes_per_s :
  sender:Hostprofile.t -> receiver:Hostprofile.t -> link:Link.t -> int ->
  float
(** [n / one_way n] — the steady-state bandwidth the model predicts for a
    message of size [n]. *)
