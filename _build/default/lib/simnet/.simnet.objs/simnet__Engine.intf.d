lib/simnet/engine.mli: Time
