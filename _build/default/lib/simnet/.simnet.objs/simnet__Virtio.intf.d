lib/simnet/virtio.mli:
