lib/simnet/offload.ml: Format Fun List String
