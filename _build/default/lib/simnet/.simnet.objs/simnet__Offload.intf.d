lib/simnet/offload.mli: Format
