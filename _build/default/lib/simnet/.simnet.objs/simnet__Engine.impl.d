lib/simnet/engine.ml: Heap Time
