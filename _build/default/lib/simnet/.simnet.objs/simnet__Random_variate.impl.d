lib/simnet/random_variate.ml: Float Int64 List Time
