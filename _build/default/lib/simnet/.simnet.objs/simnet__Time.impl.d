lib/simnet/time.ml: Float Format Int64
