lib/simnet/virtio.ml: List Queue
