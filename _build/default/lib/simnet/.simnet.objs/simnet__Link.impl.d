lib/simnet/link.ml: Float
