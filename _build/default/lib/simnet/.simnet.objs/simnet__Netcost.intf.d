lib/simnet/netcost.mli: Hostprofile Link Time
