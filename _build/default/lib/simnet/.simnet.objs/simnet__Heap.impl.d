lib/simnet/heap.ml: Array Int64
