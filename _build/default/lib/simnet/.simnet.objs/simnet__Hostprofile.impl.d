lib/simnet/hostprofile.ml: Format Offload
