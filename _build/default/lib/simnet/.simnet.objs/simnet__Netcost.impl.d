lib/simnet/netcost.ml: Float Hostprofile Link Offload Time
