lib/simnet/hostprofile.mli: Format Offload
