lib/simnet/random_variate.mli: Time
