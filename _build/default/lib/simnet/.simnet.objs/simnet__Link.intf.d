lib/simnet/link.mli:
