lib/simnet/heap.mli:
