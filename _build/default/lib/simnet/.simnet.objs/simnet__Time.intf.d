lib/simnet/time.mli: Format
