(** Per-host CPU cost profile for network I/O.

    A profile quantifies the mechanisms the paper holds responsible for the
    observed overheads: guest syscall entry and context switches (present in
    Linux, absent in single-address-space unikernels), VM exits for virtio
    kicks and interrupt injection (absent when running without a
    hypervisor), data copies through the stack, software checksumming when
    the NIC/virtio feature is missing, and per-segment protocol processing.

    Concrete named profiles for the five evaluated configurations live in
    the [unikernel] library; this module only defines the vocabulary and a
    few generic constructors. *)

type t = {
  name : string;
  virtualized : bool;  (** true ⇒ kicks/interrupts cost a VM exit *)
  syscall_ns : int;  (** one socket-API syscall entry/exit *)
  context_switch_ns : int;  (** guest kernel context switch per blocking op *)
  wakeup_ns : int;  (** scheduler wakeup latency when rx data arrives *)
  vmexit_ns : int;  (** one VM exit/entry round trip *)
  kick_batch : int;  (** tx doorbells amortized over this many frames *)
  irq_batch : int;  (** rx interrupt coalescing factor (packets/interrupt) *)
  copy_ns_per_byte : float;  (** single-core memcpy cost *)
  tx_copies : float;  (** data copies on the transmit path *)
  rx_copies : float;  (** data copies on the receive path *)
  checksum_ns_per_byte : float;  (** software Internet-checksum cost *)
  per_packet_tx_ns : int;  (** per-segment CPU cost in the guest TCP stack *)
  per_packet_rx_ns : int;
  interrupt_ns : int;  (** guest-side cost of taking one rx interrupt *)
  offloads : Offload.t;
}

val bare_metal_linux : t
(** A generic well-tuned native Linux host with full NIC offloads — the
    profile also used for the Cricket-server side in every configuration. *)

val with_offloads : t -> Offload.t -> t
(** Same host, different negotiated feature set (for ablations). *)

val pp : Format.formatter -> t -> unit
