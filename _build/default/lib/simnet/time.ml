type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let s n = Int64.mul (Int64.of_int n) 1_000_000_000L
let of_float_ns f = Int64.of_float (Float.round f)
let add = Int64.add
let sub = Int64.sub
let compare = Int64.compare
let to_float_s t = Int64.to_float t /. 1e9
let to_float_us t = Int64.to_float t /. 1e3
let to_float_ms t = Int64.to_float t /. 1e6

let pp ppf t =
  let f = Int64.to_float t in
  if Int64.abs t < 1_000L then Format.fprintf ppf "%Ldns" t
  else if Int64.abs t < 1_000_000L then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if Int64.abs t < 1_000_000_000L then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
