type t = {
  name : string;
  bandwidth_gbps : float;
  latency_ns : int;
  mtu : int;
  header_bytes : int;
}

let ethernet_100g =
  { name = "100GbE (IPoIB, MTU 9000)"; bandwidth_gbps = 100.0;
    latency_ns = 12_500; mtu = 9000; header_bytes = 66 }

let ethernet_10g =
  { name = "10GbE (MTU 1500)"; bandwidth_gbps = 10.0; latency_ns = 10_000;
    mtu = 1500; header_bytes = 66 }

(* TCP payload per on-wire packet: MTU minus IP (20) and TCP (32 with
   timestamps) headers. *)
let mss t = t.mtu - 52

let serialize_ns t ~payload ~packets =
  let wire_bytes = payload + (packets * t.header_bytes) in
  Float.of_int wire_bytes *. 8.0 /. t.bandwidth_gbps
