type 'a entry = { priority : int64; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;  (* slots [0, size) are live *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b =
  match Int64.compare a.priority b.priority with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.entries.(i) in
  t.entries.(i) <- t.entries.(j);
  t.entries.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.entries.(i) t.entries.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && less t.entries.(left) t.entries.(!smallest) then
    smallest := left;
  if right < t.size && less t.entries.(right) t.entries.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t filler =
  if t.size >= Array.length t.entries then begin
    let capacity = max 16 (2 * Array.length t.entries) in
    let grown = Array.make capacity filler in
    Array.blit t.entries 0 grown 0 t.size;
    t.entries <- grown
  end

let push t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  ensure_capacity t entry;
  t.entries.(t.size) <- entry;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (top.priority, top.value)
  end

let peek t =
  if t.size = 0 then None else Some (t.entries.(0).priority, t.entries.(0).value)

let clear t =
  t.entries <- [||];
  t.size <- 0
