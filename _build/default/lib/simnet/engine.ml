type t = { mutable clock : Time.t; queue : (unit -> unit) Heap.t }

let create () = { clock = Time.zero; queue = Heap.create () }
let now t = t.clock

let advance t d =
  if Time.compare d Time.zero < 0 then invalid_arg "Engine.advance: negative";
  t.clock <- Time.add t.clock d

let advance_to t instant =
  if Time.compare instant t.clock > 0 then t.clock <- instant

let schedule_at t due fn = Heap.push t.queue ~priority:due fn
let schedule_after t delay fn = schedule_at t (Time.add t.clock delay) fn
let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (due, fn) ->
      advance_to t due;
      fn ();
      true

let run t = while step t do () done

let run_until t deadline =
  let rec loop () =
    match Heap.peek t.queue with
    | Some (due, _) when Time.compare due deadline <= 0 ->
        ignore (step t);
        loop ()
    | _ -> ()
  in
  loop ();
  advance_to t deadline
