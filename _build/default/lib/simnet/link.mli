(** Point-to-point link model.

    Captures the physical path between the application node and the GPU
    node: bandwidth, propagation + switching latency, MTU and per-packet
    header overhead. The evaluation testbed is 100 Gbit/s Ethernet
    (ConnectX-5 in IPoIB mode) with an IP MTU of 9000. *)

type t = {
  name : string;
  bandwidth_gbps : float;  (** payload-carrying capacity, Gbit/s *)
  latency_ns : int;  (** one-way propagation + switch latency *)
  mtu : int;  (** IP MTU in bytes *)
  header_bytes : int;  (** per-packet Ethernet+IP+TCP header overhead *)
}

val ethernet_100g : t
(** The paper's interconnect: 100 Gbit/s, MTU 9000, ~5 µs one-way. *)

val ethernet_10g : t
(** A slower cluster fabric, for sensitivity studies. *)

val mss : t -> int
(** TCP maximum segment size — the payload bytes carried per on-wire
    packet ([mtu] minus IP and TCP headers). *)

val serialize_ns : t -> payload:int -> packets:int -> float
(** Time to clock [payload] bytes in [packets] packets onto the wire
    (excluding propagation latency). *)
