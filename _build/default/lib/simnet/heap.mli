(** Array-backed binary min-heap, the event queue of {!Engine}.

    Entries are ordered by a caller-supplied priority (an [int64], the
    event's due time) with a monotonically increasing sequence number as a
    tie-breaker, so events scheduled for the same instant pop in insertion
    order — a property the deterministic benchmarks rely on. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:int64 -> 'a -> unit

val pop : 'a t -> (int64 * 'a) option
(** Remove and return the minimum (earliest, then oldest) entry. *)

val peek : 'a t -> (int64 * 'a) option

val clear : 'a t -> unit
