(** Discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Model code either
    schedules callbacks ({!schedule_at} / {!schedule_after}) and lets
    {!run}/{!run_until} drive the clock, or — for the synchronous RPC
    benchmarks — simply {!advance}s the clock by analytically computed
    costs. Both styles share one clock, so a TCP state machine and a
    cost-model channel can coexist in one simulation. *)

type t

val create : unit -> t

val now : t -> Time.t

val advance : t -> Time.t -> unit
(** Move the clock forward by a duration (never backwards; negative
    durations raise [Invalid_argument]). *)

val advance_to : t -> Time.t -> unit
(** Move the clock to an absolute instant (no-op when in the past). *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Enqueue a callback for an absolute time; times before [now] fire
    immediately on the next run step (clock never rewinds). *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Execute the earliest event, advancing the clock to its due time.
    Returns [false] when the queue is empty. *)

val run : t -> unit
(** Run until the event queue drains. *)

val run_until : t -> Time.t -> unit
(** Run events due up to and including the given time, then advance the
    clock to exactly that time. *)
