(** Configurable GPU-sharing scheduler.

    The paper's closing argument: mapping whole GPUs to single unikernels
    is wasteful, so Cricket manages shared access "through configurable
    schedulers". This module schedules kernel jobs from many clients onto
    one GPU under three policies and reports per-client waiting, so the
    ablation benchmark can compare them under contention.

    The model is non-preemptive: whenever the GPU is free, the scheduler
    picks among jobs that have already arrived — FIFO by arrival, round
    robin by least-recently-served client, or strict priority. *)

module Time = Simnet.Time

type policy = Fifo | Round_robin | Priority

val policy_to_string : policy -> string

type job = {
  client : string;
  arrival : Time.t;
  duration : Time.t;
  priority : int;  (** smaller = more urgent; only Priority uses it *)
}

type placement = { job : job; start : Time.t; finish : Time.t }

val schedule : policy -> job list -> placement list
(** Run all jobs on one GPU. The result is in execution order; makespan is
    the last element's [finish]. *)

type client_stats = {
  jobs : int;
  busy : Time.t;  (** total execution time *)
  waiting : Time.t;  (** total time between arrival and start *)
  max_waiting : Time.t;
}

val per_client : placement list -> (string * client_stats) list
(** Sorted by client name. *)

val makespan : placement list -> Time.t

val fairness : placement list -> float
(** Jain's fairness index over per-client busy GPU time (1.0 = perfectly
    fair). *)

(** {1 Multi-GPU scheduling}

    The evaluation node has four GPUs (A100 + 2×T4 + P40) and the paper's
    Figure 2 envisions every application reaching every GPU. These
    functions place jobs across a pool of identical queues with
    least-loaded assignment under the same policies. *)

type multi_placement = {
  mp_job : job;
  gpu : int;  (** 0-based index into the pool *)
  mp_start : Time.t;
  mp_finish : Time.t;
}

val schedule_multi : policy -> gpus:int -> job list -> multi_placement list
(** Raises [Invalid_argument] when [gpus < 1]. *)

val multi_makespan : multi_placement list -> Time.t

val gpu_utilization : multi_placement list -> gpus:int -> float array
(** Busy fraction of each GPU over the makespan. *)
