type entry = {
  seq : int;
  proc : int;
  proc_name : string;
  arg_bytes : int;
  at : Simnet.Time.t;
  duration : Simnet.Time.t;
}

type t = {
  ring : entry option array;
  mutable next : int;  (* total recorded; ring slot is next mod capacity *)
  mutable is_enabled : bool;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  { ring = Array.make capacity None; next = 0; is_enabled = false }

let enabled t = t.is_enabled
let set_enabled t v = t.is_enabled <- v

let record t ~now ~proc ~proc_name ~arg_bytes ~duration =
  if t.is_enabled then begin
    let entry =
      { seq = t.next; proc; proc_name; arg_bytes; at = now; duration }
    in
    t.ring.(t.next mod Array.length t.ring) <- Some entry;
    t.next <- t.next + 1
  end

let entries t =
  let capacity = Array.length t.ring in
  let first = max 0 (t.next - capacity) in
  List.init (t.next - first) (fun i ->
      match t.ring.((first + i) mod capacity) with
      | Some e -> e
      | None -> assert false)

let recorded t = t.next

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0

let pp_entry ppf e =
  Format.fprintf ppf "#%d %a %s (%d arg bytes, %a)" e.seq Simnet.Time.pp e.at
    e.proc_name e.arg_bytes Simnet.Time.pp e.duration
