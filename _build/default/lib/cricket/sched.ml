module Time = Simnet.Time

type policy = Fifo | Round_robin | Priority

let policy_to_string = function
  | Fifo -> "fifo"
  | Round_robin -> "round-robin"
  | Priority -> "priority"

type job = {
  client : string;
  arrival : Time.t;
  duration : Time.t;
  priority : int;
}

type placement = { job : job; start : Time.t; finish : Time.t }

(* Pick the next job among [ready] (non-empty) under the policy.
   [last_served] maps client -> index of the round-robin turn in which the
   client was last picked, for least-recently-served selection. *)
let pick policy ~last_served ~turn:_ ready =
  let by_arrival a b =
    match Time.compare a.arrival b.arrival with
    | 0 -> compare a.client b.client
    | c -> c
  in
  match policy with
  | Fifo -> List.hd (List.sort by_arrival ready)
  | Priority ->
      List.hd
        (List.sort
           (fun a b ->
             match compare a.priority b.priority with
             | 0 -> by_arrival a b
             | c -> c)
           ready)
  | Round_robin ->
      let last c =
        match Hashtbl.find_opt last_served c with Some i -> i | None -> -1
      in
      List.hd
        (List.sort
           (fun a b ->
             match compare (last a.client) (last b.client) with
             | 0 -> by_arrival a b
             | c -> c)
           ready)

let schedule policy jobs =
  let pending =
    ref
      (List.sort
         (fun a b ->
           match Time.compare a.arrival b.arrival with
           | 0 -> compare a.client b.client
           | c -> c)
         jobs)
  in
  let last_served : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let turn = ref 0 in
  let free_at = ref Time.zero in
  let placements = ref [] in
  while !pending <> [] do
    (* the GPU idles until the first arrival if nothing is ready *)
    let first_arrival = (List.hd !pending).arrival in
    let decision_time =
      if Time.compare !free_at first_arrival > 0 then !free_at
      else first_arrival
    in
    let ready =
      List.filter (fun j -> Time.compare j.arrival decision_time <= 0) !pending
    in
    let chosen = pick policy ~last_served ~turn:!turn ready in
    pending := List.filter (fun j -> j != chosen) !pending;
    Hashtbl.replace last_served chosen.client !turn;
    incr turn;
    let start = decision_time in
    let finish = Time.add start chosen.duration in
    free_at := finish;
    placements := { job = chosen; start; finish } :: !placements
  done;
  List.rev !placements

type client_stats = {
  jobs : int;
  busy : Time.t;
  waiting : Time.t;
  max_waiting : Time.t;
}

let per_client placements =
  let table : (string, client_stats) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let wait = Time.sub p.start p.job.arrival in
      let prev =
        match Hashtbl.find_opt table p.job.client with
        | Some s -> s
        | None ->
            { jobs = 0; busy = Time.zero; waiting = Time.zero;
              max_waiting = Time.zero }
      in
      Hashtbl.replace table p.job.client
        {
          jobs = prev.jobs + 1;
          busy = Time.add prev.busy p.job.duration;
          waiting = Time.add prev.waiting wait;
          max_waiting =
            (if Time.compare wait prev.max_waiting > 0 then wait
             else prev.max_waiting);
        })
    placements;
  Hashtbl.fold (fun c s acc -> (c, s) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let makespan placements =
  List.fold_left
    (fun acc p -> if Time.compare p.finish acc > 0 then p.finish else acc)
    Time.zero placements

let fairness placements =
  let stats = per_client placements in
  match stats with
  | [] -> 1.0
  | _ ->
      let xs = List.map (fun (_, s) -> Time.to_float_s s.busy) stats in
      let n = Float.of_int (List.length xs) in
      let sum = List.fold_left ( +. ) 0.0 xs in
      let sum_sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if sum_sq = 0.0 then 1.0 else sum *. sum /. (n *. sum_sq)

type multi_placement = {
  mp_job : job;
  gpu : int;
  mp_start : Time.t;
  mp_finish : Time.t;
}

let schedule_multi policy ~gpus jobs =
  if gpus < 1 then invalid_arg "Sched.schedule_multi: gpus";
  let pending =
    ref
      (List.sort
         (fun a b ->
           match Time.compare a.arrival b.arrival with
           | 0 -> compare a.client b.client
           | c -> c)
         jobs)
  in
  let free_at = Array.make gpus Time.zero in
  let last_served : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let turn = ref 0 in
  let placements = ref [] in
  while !pending <> [] do
    (* the next scheduling decision happens when some GPU is free; jobs
       are picked among those that have arrived by then *)
    let least_loaded = ref 0 in
    Array.iteri
      (fun i t -> if Time.compare t free_at.(!least_loaded) < 0 then least_loaded := i)
      free_at;
    let g = !least_loaded in
    let first_arrival = (List.hd !pending).arrival in
    let decision_time =
      if Time.compare free_at.(g) first_arrival > 0 then free_at.(g)
      else first_arrival
    in
    let ready =
      List.filter (fun j -> Time.compare j.arrival decision_time <= 0) !pending
    in
    let chosen = pick policy ~last_served ~turn:!turn ready in
    pending := List.filter (fun j -> j != chosen) !pending;
    Hashtbl.replace last_served chosen.client !turn;
    incr turn;
    let start = decision_time in
    let finish = Time.add start chosen.duration in
    free_at.(g) <- finish;
    placements := { mp_job = chosen; gpu = g; mp_start = start; mp_finish = finish } :: !placements
  done;
  List.rev !placements

let multi_makespan placements =
  List.fold_left
    (fun acc p -> if Time.compare p.mp_finish acc > 0 then p.mp_finish else acc)
    Time.zero placements

let gpu_utilization placements ~gpus =
  let busy = Array.make gpus 0.0 in
  List.iter
    (fun p ->
      busy.(p.gpu) <-
        busy.(p.gpu) +. Time.to_float_s (Time.sub p.mp_finish p.mp_start))
    placements;
  let horizon = Time.to_float_s (multi_makespan placements) in
  if horizon <= 0.0 then busy
  else Array.map (fun b -> b /. horizon) busy
