lib/cricket/lifetime.mli: Client
