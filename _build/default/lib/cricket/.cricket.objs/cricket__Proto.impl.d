lib/cricket/proto.ml: List Oncrpc Xdr
