lib/cricket/sched.ml: Array Float Hashtbl List Simnet
