lib/cricket/local.ml: Client List Oncrpc Server String
