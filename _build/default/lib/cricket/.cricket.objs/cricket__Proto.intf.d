lib/cricket/proto.mli: Oncrpc Xdr
