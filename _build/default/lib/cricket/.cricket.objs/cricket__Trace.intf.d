lib/cricket/trace.mli: Format Simnet
