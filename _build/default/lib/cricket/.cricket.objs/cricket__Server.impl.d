lib/cricket/server.ml: Bytes Cudasim Filename Fun Gpusim Hashtbl Int64 Lazy List Oncrpc Option Printf Proto Rpcl Simnet String Trace
