lib/cricket/server.mli: Cudasim Gpusim Oncrpc Trace
