lib/cricket/local.mli: Client Oncrpc Server
