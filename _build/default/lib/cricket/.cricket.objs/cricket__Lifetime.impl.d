lib/cricket/lifetime.ml: Bytes Client Fun Int64 Printexc
