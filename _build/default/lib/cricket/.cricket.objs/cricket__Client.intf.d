lib/cricket/client.mli: Gpusim Oncrpc
