lib/cricket/client.ml: Bytes Cubin Cudasim Fun Gpusim Hashtbl Int64 List Oncrpc Proto
