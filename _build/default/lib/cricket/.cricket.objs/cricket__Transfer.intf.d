lib/cricket/transfer.mli:
