lib/cricket/transfer.ml: Float Printexc Printf
