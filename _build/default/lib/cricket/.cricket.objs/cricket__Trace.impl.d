lib/cricket/trace.ml: Array Format List Simnet
