lib/cricket/sched.mli: Simnet
