(* Async pipeline: hiding the guest's network round trip behind a CUDA
   stream.

   A unikernel guest reaches its GPU over a virtualized network, so every
   synchronous CUDA call pays a full RPC round trip. This example runs the
   same upload+saxpy loop twice on a simulated Hermit unikernel — once
   with blocking calls, once through a Cricket.Stream whose commands are
   coalesced into one-way RPCs (RFC 5531 section 8 "batching") and flushed
   together — and prints the virtual wall-clock for both. The results are
   bit-identical; only the time changes.

     dune exec examples/async_pipeline.exe *)

let rounds = 64
let elements = 4096

let run_mode cfg mode =
  let params = { Apps.Pipeline.rounds; elements } in
  Apps.Pipeline.measure ~params mode cfg

let () =
  let cfg = Unikernel.Config.hermit in
  Printf.printf
    "Pipelining ablation on %s (virtio network): %d rounds of upload+saxpy \
     on %d floats\n\n"
    cfg.Unikernel.Config.name rounds elements;
  let sync = run_mode cfg Apps.Pipeline.Sync in
  Printf.printf "%-10s %10s %14s %10s %s\n" "mode" "time[ms]" "API calls/s"
    "speedup" "result";
  List.iter
    (fun mode ->
      let r = run_mode cfg mode in
      Printf.printf "%-10s %10.3f %14.0f %9.2fx %s\n"
        (Apps.Pipeline.mode_name r.Apps.Pipeline.mode)
        (Simnet.Time.to_float_ms r.Apps.Pipeline.elapsed)
        r.Apps.Pipeline.calls_per_s
        (Simnet.Time.to_float_s sync.Apps.Pipeline.elapsed
        /. Simnet.Time.to_float_s r.Apps.Pipeline.elapsed)
        (if r.Apps.Pipeline.digest = sync.Apps.Pipeline.digest then
           "bit-identical"
         else "MISMATCH"))
    [ Apps.Pipeline.Sync; Apps.Pipeline.Async 1; Apps.Pipeline.Async 4;
      Apps.Pipeline.Async 16; Apps.Pipeline.Async 64 ];
  Printf.printf
    "\nEach async batch of commands plus its closing synchronize costs one\n\
     network round trip instead of one per call; deeper pipelines amortize\n\
     the virtio latency further until GPU work dominates.\n"
