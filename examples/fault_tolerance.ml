(* Fault tolerance: run matrixMul over a network that drops 1 % of RPC
   records AND crashes the Cricket server mid-workload, and show that the
   robustness stack — client retransmission with virtual-time backoff, the
   server's at-most-once duplicate-request cache, and checkpoint/journal/
   replay session recovery — still produces a bit-identical result.

     dune exec examples/fault_tolerance.exe *)

let params = { Apps.Matrix_mul.ha = 64; wa = 64; wb = 64; iterations = 500 }

let cfg = Unikernel.Config.hermit

let () =
  (* reference run: perfect network *)
  let clean_digest = ref "" in
  let clean =
    Unikernel.Runner.run ~functional:true cfg
      (Apps.Matrix_mul.run ~verify:true ~digest_out:clean_digest params)
  in
  Printf.printf "fault-free: %s  digest %s\n"
    (Format.asprintf "%a" Simnet.Time.pp clean.Unikernel.Runner.elapsed)
    !clean_digest;

  (* the same workload under a declarative, seeded fault plan: every record
     has a 1 % chance of vanishing, and after 400 records the server
     process dies and takes 2 ms to come back *)
  let plan =
    {
      Simnet.Fault.none with
      Simnet.Fault.seed = 42;
      drop_rate = 0.01;
      crashes =
        [ { Simnet.Fault.after_records = 400; down_for = Simnet.Time.ms 2 } ];
    }
  in
  let faulty_digest = ref "" in
  let report =
    Unikernel.Runner.run_with_faults ~plan cfg
      (Apps.Matrix_mul.run ~verify:true ~digest_out:faulty_digest params)
  in
  Format.printf "under faults: @[%a@]@." Unikernel.Runner.pp_fault_report
    report;
  Printf.printf "digests %s\n"
    (if !clean_digest = !faulty_digest then "match bit for bit"
     else "DIFFER — recovery failed");
  assert (!clean_digest = !faulty_digest);
  assert (report.Unikernel.Runner.recoveries > 0)
